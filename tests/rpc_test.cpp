// The decision wire protocol and the controller/minion split (src/rpc/):
//
//  - wire round trips are bit-exact (raw IEEE-754 transport) and every
//    malformed or hostile frame is rejected with WireError before any
//    allocation -- the import_model untrusted-input discipline at the
//    transport seam;
//  - a loopback DecisionServer serving the same forest is bit-identical
//    to in-process inference, for the raw client, for the fleet engine,
//    and for ANY (shards, num_threads) grid point (the determinism
//    contract survives the socket);
//  - a dead or dropped backend degrades through rung 2 of the ladder:
//    frame-identical to a 100% classifier outage, which in turn reduces
//    to the RA-first heuristic (faults_test proves that last hop);
//  - ModelPush hot swaps are atomic per batch: concurrent classify
//    traffic never crashes and never sees two forests inside one reply;
//  - the v2 additions hold their contracts: StatsPush/StatsAck round
//    trips a labeled MetricsSnapshot (and rejects forged claims), a
//    loopback pull_stats() returns the daemon's own origin label, the
//    retry/reconnect ladder is counted, daemon classify spans parent
//    under the caller's span in a merged trace export, and mounting a
//    scrape endpoint on a fleet run is observation-only (bit-identical
//    digests) while serving controller- AND daemon-origin series.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/controller.h"
#include "core/decision_backend.h"
#include "env/registry.h"
#include "json_mini.h"
#include "ml/model_io.h"
#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "obs/scrape.h"
#include "obs/span.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/wire.h"
#include "sim/fleet.h"
#include "sim/golden.h"
#include "test_helpers.h"

namespace libra {
namespace {

using libra::testing::make_record;

// ---------- shared fixtures ----------

// A unique unix socket path per call (tests run in one process; the pid
// guards against a stale file from a crashed previous run).
std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/libra_rpc_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// A trained 3-class classifier over clearly separated synthetic cases
// (same corpus as fleet_test/faults_test).
core::LibraClassifier make_classifier() {
  trace::Dataset ds;
  for (int i = 0; i < 40; ++i) {
    trace::CaseRecord ba = make_record(4, -1, 4);
    ba.init_best.snr_db = 20.0;
    ba.new_at_init_pair.snr_db = 5.0 - 0.1 * (i % 5);
    ba.new_at_init_pair.tof_ns = std::nullopt;
    ds.records.push_back(ba);
    trace::CaseRecord ra = make_record(8, 5, 5);
    ra.init_best.snr_db = 26.0;
    ra.init_best.tof_ns = 20.0;
    ra.new_at_init_pair.snr_db = 19.0 - 0.1 * (i % 7);
    ra.new_at_init_pair.tof_ns = 45.0;
    ds.records.push_back(ra);
    trace::CaseRecord na = make_record(6, 6, 6);
    na.forced_na = true;
    na.init_best.snr_db = 22.0;
    na.new_at_init_pair.snr_db = 22.0 - 0.05 * (i % 3);
    ds.na_records.push_back(na);
  }
  core::LibraClassifierConfig cfg;
  cfg.forest.num_threads = 4;
  core::LibraClassifier c(cfg);
  util::Rng rng(1);
  c.train(ds, {}, rng);
  return c;
}

const phy::ErrorModel& shared_error_model() {
  static const phy::McsTable table;
  static const phy::ErrorModel em(&table);
  return em;
}

// A small fitted forest over a trivially separable 3-feature corpus, with
// a chosen tree count -- the hot-swap test tells forests apart by their
// vote denominators (k/10 vs k/7).
ml::RandomForest make_small_forest(int num_trees, std::uint64_t seed = 3) {
  ml::DataSet ds(3);
  for (int i = 0; i < 30; ++i) {
    const double j = 0.01 * i;
    ds.add(std::vector<double>{0.0 + j, 1.0, 5.0}, 0);
    ds.add(std::vector<double>{5.0 + j, 2.0, 1.0}, 1);
    ds.add(std::vector<double>{10.0 + j, 3.0, 3.0}, 2);
  }
  ml::RandomForestConfig cfg;
  cfg.num_trees = num_trees;
  ml::RandomForest forest(cfg);
  util::Rng rng(seed);
  forest.fit(ds, rng);
  return forest;
}

ml::DataSet make_query_rows() {
  ml::DataSet rows(3);
  rows.add(std::vector<double>{0.2, 1.0, 4.9}, 0);
  rows.add(std::vector<double>{5.1, 2.0, 1.2}, 0);
  rows.add(std::vector<double>{9.8, 3.1, 2.9}, 0);
  rows.add(std::vector<double>{4.0, 1.5, 3.0}, 0);
  return rows;
}

// ---------- wire: round trips ----------

TEST(Wire, FrameRoundTripAllTypes) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  for (const rpc::MsgType type :
       {rpc::MsgType::kHello, rpc::MsgType::kPing, rpc::MsgType::kPong,
        rpc::MsgType::kClassifyRequest, rpc::MsgType::kVerdictReply,
        rpc::MsgType::kModelPush, rpc::MsgType::kAck}) {
    const std::vector<std::uint8_t> bytes = rpc::encode_frame(type, payload);
    ASSERT_EQ(bytes.size(), rpc::kHeaderBytes + payload.size());
    std::size_t consumed = 0;
    const std::optional<rpc::Frame> frame = rpc::decode_frame(bytes, consumed);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(Wire, PartialFrameAsksForMoreBytes) {
  const std::vector<std::uint8_t> bytes =
      rpc::encode_frame(rpc::MsgType::kPing, std::vector<std::uint8_t>(8, 7));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::size_t consumed = 99;
    const std::optional<rpc::Frame> frame = rpc::decode_frame(
        std::span<const std::uint8_t>(bytes.data(), cut), consumed);
    EXPECT_FALSE(frame.has_value()) << "cut " << cut;
    EXPECT_EQ(consumed, 0u) << "cut " << cut;
  }
}

TEST(Wire, TwoFramesDecodeInSequence) {
  std::vector<std::uint8_t> stream =
      rpc::encode_frame(rpc::MsgType::kPing, {});
  const std::vector<std::uint8_t> second =
      rpc::encode_frame(rpc::MsgType::kPong, std::vector<std::uint8_t>{9});
  stream.insert(stream.end(), second.begin(), second.end());

  std::size_t consumed = 0;
  const std::optional<rpc::Frame> first = rpc::decode_frame(stream, consumed);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, rpc::MsgType::kPing);
  const std::span<const std::uint8_t> rest(stream.data() + consumed,
                                           stream.size() - consumed);
  std::size_t consumed2 = 0;
  const std::optional<rpc::Frame> next = rpc::decode_frame(rest, consumed2);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->type, rpc::MsgType::kPong);
  EXPECT_EQ(consumed + consumed2, stream.size());
}

TEST(Wire, ClassifyRequestRoundTripIsBitExact) {
  // Extreme doubles must survive the wire with their exact bit patterns --
  // that is the whole determinism argument for remote serving.
  const std::vector<double> extremes = {
      0.0,
      -0.0,
      1.0 / 3.0,
      -1.0 / 7.0,
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::max(),
      std::numeric_limits<double>::epsilon(),
      6.02214076e23,
      -2.2250738585072011e-308,  // the infamous slow-parse denormal
  };
  rpc::ClassifyRequestMsg msg;
  msg.request_id = 0xDEADBEEFCAFEF00Dull;
  msg.trace_id = 0x1122334455667788ull;
  msg.parent_span_id = 0x99AABBCCDDEEFF00ull;
  msg.row_dim = 5;
  msg.rows.assign(extremes.begin(), extremes.end());
  const std::vector<std::uint8_t> payload = msg.encode();
  const rpc::ClassifyRequestMsg back = rpc::ClassifyRequestMsg::decode(payload);
  EXPECT_EQ(back.request_id, msg.request_id);
  EXPECT_EQ(back.trace_id, msg.trace_id);
  EXPECT_EQ(back.parent_span_id, msg.parent_span_id);
  EXPECT_EQ(back.row_dim, msg.row_dim);
  ASSERT_EQ(back.rows.size(), msg.rows.size());
  EXPECT_EQ(std::memcmp(back.rows.data(), msg.rows.data(),
                        msg.rows.size() * sizeof(double)),
            0);
}

TEST(Wire, VerdictReplyRoundTripThroughVotes) {
  const std::vector<std::vector<double>> votes = {
      {0.25, 0.5, 0.25}, {1.0, 0.0, 0.0}, {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0}};
  const rpc::VerdictReplyMsg msg = rpc::VerdictReplyMsg::from_votes(42, votes);
  const rpc::VerdictReplyMsg back =
      rpc::VerdictReplyMsg::decode(msg.encode());
  EXPECT_EQ(back.request_id, 42u);
  EXPECT_EQ(back.to_votes(), votes);
}

TEST(Wire, HelloModelPushAckRoundTrips) {
  rpc::HelloMsg hello;
  hello.version = rpc::kVersion;
  hello.model_loaded = true;
  hello.num_classes = 3;
  hello.num_trees = 60;
  const rpc::HelloMsg hback = rpc::HelloMsg::decode(hello.encode());
  EXPECT_EQ(hback.version, hello.version);
  EXPECT_EQ(hback.model_loaded, hello.model_loaded);
  EXPECT_EQ(hback.num_classes, hello.num_classes);
  EXPECT_EQ(hback.num_trees, hello.num_trees);

  rpc::ModelPushMsg push;
  push.request_id = 7;
  push.model_text = "forest 1\nnot actually validated here\n";
  const rpc::ModelPushMsg pback = rpc::ModelPushMsg::decode(push.encode());
  EXPECT_EQ(pback.request_id, 7u);
  EXPECT_EQ(pback.model_text, push.model_text);

  rpc::AckMsg ack;
  ack.request_id = 9;
  ack.ok = false;
  ack.message = "nope";
  const rpc::AckMsg aback = rpc::AckMsg::decode(ack.encode());
  EXPECT_EQ(aback.request_id, 9u);
  EXPECT_FALSE(aback.ok);
  EXPECT_EQ(aback.message, "nope");

  rpc::AckMsg empty;  // empty message must round-trip too
  const rpc::AckMsg eback = rpc::AckMsg::decode(empty.encode());
  EXPECT_TRUE(eback.ok);
  EXPECT_TRUE(eback.message.empty());
}

// ---------- wire: hostile input ----------

TEST(Wire, RejectsBadMagicVersionReservedTypeChecksum) {
  const std::vector<std::uint8_t> good =
      rpc::encode_frame(rpc::MsgType::kPing, std::vector<std::uint8_t>{1, 2});
  std::size_t consumed = 0;

  auto corrupt = [&](std::size_t offset, std::uint8_t value) {
    std::vector<std::uint8_t> bad = good;
    bad[offset] = value;
    return bad;
  };
  // magic (offset 0), version (4), type (6), reserved (12), checksum (16),
  // payload byte (header+0 -> checksum mismatch).
  EXPECT_THROW(rpc::decode_frame(corrupt(0, 0xFF), consumed), rpc::WireError);
  EXPECT_THROW(rpc::decode_frame(corrupt(4, 0x7F), consumed), rpc::WireError);
  EXPECT_THROW(rpc::decode_frame(corrupt(6, 0x63), consumed), rpc::WireError);
  EXPECT_THROW(rpc::decode_frame(corrupt(12, 1), consumed), rpc::WireError);
  EXPECT_THROW(rpc::decode_frame(corrupt(16, good[16] ^ 0x5A), consumed),
               rpc::WireError);
  EXPECT_THROW(
      rpc::decode_frame(corrupt(rpc::kHeaderBytes, good[rpc::kHeaderBytes] ^ 1),
                        consumed),
      rpc::WireError);
}

TEST(Wire, RejectsOversizedPayloadClaimBeforeAllocation) {
  // A crafted header claiming a ~4 GiB payload: the decoder must throw on
  // the length field itself -- BEFORE comparing against the buffer or
  // allocating -- so a 24-byte datagram cannot request a 4 GiB buffer.
  std::vector<std::uint8_t> header =
      rpc::encode_frame(rpc::MsgType::kPing, {});
  const std::uint32_t huge = 0xFFFFFFF0u;  // ~4 GiB claim
  std::memcpy(header.data() + 8, &huge, sizeof(huge));
  std::size_t consumed = 0;
  EXPECT_THROW(rpc::decode_frame(header, consumed), rpc::WireError);

  // Just over the cap must also be rejected even though the u32 fits.
  const auto just_over =
      static_cast<std::uint32_t>(rpc::kMaxPayloadBytes + 1);
  std::memcpy(header.data() + 8, &just_over, sizeof(just_over));
  EXPECT_THROW(rpc::decode_frame(header, consumed), rpc::WireError);
}

TEST(Wire, RejectsCountPayloadMismatch) {
  // num_rows * row_dim larger than the shipped doubles.
  rpc::ClassifyRequestMsg msg;
  msg.request_id = 1;
  msg.row_dim = 4;
  msg.rows.assign(8, 1.5);  // 2 rows
  std::vector<std::uint8_t> payload = msg.encode();
  // Bump the num_rows field (offset 24, after the u64 request_id /
  // trace_id / parent_span_id triple).
  const std::uint32_t forged_rows = 1000;
  std::memcpy(payload.data() + 24, &forged_rows, sizeof(forged_rows));
  EXPECT_THROW(rpc::ClassifyRequestMsg::decode(payload), rpc::WireError);

  // Claimed row_dim over the cap.
  const std::uint32_t two = 2;
  std::memcpy(payload.data() + 24, &two, sizeof(two));
  const auto huge_dim = static_cast<std::uint32_t>(rpc::kMaxRowDim + 1);
  std::memcpy(payload.data() + 28, &huge_dim, sizeof(huge_dim));
  EXPECT_THROW(rpc::ClassifyRequestMsg::decode(payload), rpc::WireError);
}

TEST(Wire, RejectsTrailingBytes) {
  rpc::AckMsg ack;
  ack.message = "fine";
  std::vector<std::uint8_t> payload = ack.encode();
  payload.push_back(0);  // one stray byte
  EXPECT_THROW(rpc::AckMsg::decode(payload), rpc::WireError);
}

TEST(Wire, EncodeRejectsOversizedBatch) {
  rpc::ClassifyRequestMsg msg;
  msg.row_dim = 1;
  msg.rows.assign(rpc::kMaxBatchRows + 1, 0.0);
  EXPECT_THROW(msg.encode(), rpc::WireError);
}

// ---------- wire: stats push/ack ----------

TEST(Wire, StatsMsgRoundTripsLabeledSnapshot) {
  rpc::StatsMsg msg;
  msg.request_id = 31;
  msg.origin = "daemon:rack12";
  msg.snapshot.counters.push_back({"rpc.server.requests", 12345});
  msg.snapshot.counters.push_back({"rpc.server.rows", 0});
  msg.snapshot.gauges.push_back({"fleet.links_active", 42.5});
  obs::MetricsSnapshot::HistogramValue h;
  h.name = "rpc.server.classify_us";
  h.data.count = 3;
  h.data.sum = 7.5;
  h.data.min = 0.5;
  h.data.max = 4.0;
  h.data.buckets[0] = 1;  // 0.5
  h.data.buckets[2] = 1;  // 3.0 in [2, 4)
  h.data.buckets[3] = 1;  // 4.0 in [4, 8)
  msg.snapshot.histograms.push_back(h);

  const rpc::StatsMsg back = rpc::StatsMsg::decode(msg.encode());
  EXPECT_EQ(back.request_id, 31u);
  EXPECT_EQ(back.origin, "daemon:rack12");
  ASSERT_EQ(back.snapshot.counters.size(), 2u);
  EXPECT_EQ(back.snapshot.counters[0].name, "rpc.server.requests");
  EXPECT_EQ(back.snapshot.counters[0].value, 12345u);
  EXPECT_EQ(back.snapshot.counters[1].value, 0u);
  ASSERT_EQ(back.snapshot.gauges.size(), 1u);
  EXPECT_EQ(back.snapshot.gauges[0].value, 42.5);
  ASSERT_EQ(back.snapshot.histograms.size(), 1u);
  const obs::HistogramData& hd = back.snapshot.histograms[0].data;
  EXPECT_EQ(hd.count, 3u);
  EXPECT_EQ(hd.sum, 7.5);
  EXPECT_EQ(hd.min, 0.5);
  EXPECT_EQ(hd.max, 4.0);
  // The elided trailing buckets must come back as zeros, the occupied
  // ones exactly.
  for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
    EXPECT_EQ(hd.buckets[b], h.data.buckets[b]) << "bucket " << b;
  }

  // The solicitation form pull_stats() sends: an empty snapshot.
  rpc::StatsMsg probe;
  probe.request_id = 7;
  probe.origin = "controller";
  const rpc::StatsMsg pback = rpc::StatsMsg::decode(probe.encode());
  EXPECT_EQ(pback.origin, "controller");
  EXPECT_TRUE(pback.snapshot.counters.empty());
  EXPECT_TRUE(pback.snapshot.gauges.empty());
  EXPECT_TRUE(pback.snapshot.histograms.empty());
}

TEST(Wire, StatsMsgElidesTrailingZeroBucketsOnTheWire) {
  rpc::StatsMsg low, high;
  low.snapshot.histograms.emplace_back();
  low.snapshot.histograms[0].name = "h";
  low.snapshot.histograms[0].data.buckets[0] = 1;
  high.snapshot.histograms.emplace_back();
  high.snapshot.histograms[0].name = "h";
  high.snapshot.histograms[0].data.buckets[obs::kHistogramBuckets - 1] = 1;
  // Same shape except for which bucket is occupied: the low histogram
  // ships 1 bucket, the high one all of them.
  EXPECT_EQ(high.encode().size() - low.encode().size(),
            (obs::kHistogramBuckets - 1) * sizeof(std::uint64_t));
}

TEST(Wire, StatsMsgRejectsHostileClaims) {
  // Encode-side caps: too many entries, oversized names.
  rpc::StatsMsg fat;
  fat.snapshot.counters.resize(rpc::kMaxStatsEntries + 1);
  EXPECT_THROW(fat.encode(), rpc::WireError);
  rpc::StatsMsg longname;
  longname.snapshot.counters.push_back(
      {std::string(rpc::kMaxStatsNameBytes + 1, 'n'), 1});
  EXPECT_THROW(longname.encode(), rpc::WireError);

  // Decode-side: forge the counter-count field of a valid payload. With
  // origin "x" it sits at offset 11 (u64 request_id + u16 len + 1 byte).
  rpc::StatsMsg msg;
  msg.request_id = 1;
  msg.origin = "x";
  msg.snapshot.counters.push_back({"c", 9});
  const std::vector<std::uint8_t> good = msg.encode();

  std::vector<std::uint8_t> over_cap = good;
  const auto huge = static_cast<std::uint32_t>(rpc::kMaxStatsEntries + 1);
  std::memcpy(over_cap.data() + 11, &huge, sizeof(huge));
  EXPECT_THROW(rpc::StatsMsg::decode(over_cap), rpc::WireError);

  // A claim under the cap but past the shipped bytes must fail the
  // payload-size sanity check, not read garbage.
  std::vector<std::uint8_t> starved = good;
  const std::uint32_t hundred = 100;
  std::memcpy(starved.data() + 11, &hundred, sizeof(hundred));
  EXPECT_THROW(rpc::StatsMsg::decode(starved), rpc::WireError);

  // Trailing bytes after a complete snapshot are a framing error.
  std::vector<std::uint8_t> trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(rpc::StatsMsg::decode(trailing), rpc::WireError);
}

// ---------- address parsing ----------

TEST(RpcClient, ParseRemoteAddrForms) {
  EXPECT_EQ(rpc::parse_remote_addr("unix:/tmp/x.sock").unix_socket,
            "/tmp/x.sock");
  EXPECT_EQ(rpc::parse_remote_addr("/tmp/y.sock").unix_socket, "/tmp/y.sock");
  const rpc::ClientConfig tcp = rpc::parse_remote_addr("127.0.0.1:9000");
  EXPECT_TRUE(tcp.unix_socket.empty());
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 9000);

  EXPECT_THROW(rpc::parse_remote_addr("unix:"), std::invalid_argument);
  EXPECT_THROW(rpc::parse_remote_addr("nocolon"), std::invalid_argument);
  EXPECT_THROW(rpc::parse_remote_addr("host:notaport"), std::invalid_argument);
  EXPECT_THROW(rpc::parse_remote_addr("host:70000"), std::invalid_argument);
  EXPECT_THROW(rpc::parse_remote_addr(":9000"), std::invalid_argument);
}

// ---------- server/client loopback ----------

TEST(RpcLoopback, HelloPingClassifyMatchInProcessBitExact) {
  const ml::RandomForest forest = make_small_forest(10);
  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);
  server.set_forest(forest);
  server.start();

  rpc::ClientConfig ccfg;
  ccfg.unix_socket = scfg.unix_socket;
  rpc::DecisionClient client(ccfg);
  ASSERT_TRUE(client.connect());
  EXPECT_TRUE(client.ping());

  const std::optional<rpc::HelloMsg> hello = client.hello();
  ASSERT_TRUE(hello.has_value());
  EXPECT_TRUE(hello->model_loaded);
  EXPECT_EQ(hello->num_trees, 10u);
  EXPECT_EQ(hello->num_classes, 3);

  const ml::DataSet rows = make_query_rows();
  const std::optional<std::vector<std::vector<double>>> votes =
      client.classify(rows);
  ASSERT_TRUE(votes.has_value());
  const std::vector<std::vector<double>> local =
      forest.vote_fractions_batch(rows);
  ASSERT_EQ(votes->size(), local.size());
  for (std::size_t r = 0; r < local.size(); ++r) {
    ASSERT_EQ((*votes)[r].size(), local[r].size()) << "row " << r;
    for (std::size_t c = 0; c < local[r].size(); ++c) {
      EXPECT_EQ((*votes)[r][c], local[r][c]) << "row " << r << " class " << c;
    }
  }
  server.stop();
}

TEST(RpcLoopback, TcpEphemeralPortServes) {
  rpc::ServerConfig scfg;  // empty unix_socket -> TCP, port 0 -> ephemeral
  rpc::DecisionServer server(scfg);
  server.set_forest(make_small_forest(5));
  server.start();
  ASSERT_GT(server.port(), 0);

  rpc::ClientConfig ccfg;
  ccfg.port = server.port();
  rpc::DecisionClient client(ccfg);
  EXPECT_TRUE(client.ping());
  const std::optional<std::vector<std::vector<double>>> votes =
      client.classify(make_query_rows());
  ASSERT_TRUE(votes.has_value());
  EXPECT_EQ(votes->size(), 4u);
  server.stop();
}

TEST(RpcLoopback, ClassifyAgainstEmptyServerFailsSoft) {
  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);  // no forest installed
  server.start();

  rpc::ClientConfig ccfg;
  ccfg.unix_socket = scfg.unix_socket;
  rpc::DecisionClient client(ccfg);
  const std::optional<rpc::HelloMsg> hello = client.hello();
  ASSERT_TRUE(hello.has_value());
  EXPECT_FALSE(hello->model_loaded);
  EXPECT_FALSE(client.classify(make_query_rows()).has_value());
  server.stop();
}

TEST(RpcLoopback, TamperedModelPushIsRejectedAndOldModelKeepsServing) {
  const ml::RandomForest forest = make_small_forest(10);
  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);
  server.set_forest(forest);
  server.start();

  rpc::ClientConfig ccfg;
  ccfg.unix_socket = scfg.unix_socket;
  rpc::DecisionClient client(ccfg);

  // Take a healthy serialization and vandalize it: the server must run the
  // full load_forest/import_model validation and keep the old model.
  std::ostringstream out;
  ml::save_forest(forest, out);
  std::string tampered = out.str();
  const std::size_t digit = tampered.find_first_of("0123456789");
  ASSERT_NE(digit, std::string::npos);
  tampered.replace(digit, 1, "999999");  // absurd header count

  const std::optional<rpc::AckMsg> ack = client.push_model_text(tampered);
  ASSERT_TRUE(ack.has_value());
  EXPECT_FALSE(ack->ok);
  EXPECT_FALSE(ack->message.empty());

  // Garbage that is not even close to the format.
  const std::optional<rpc::AckMsg> ack2 =
      client.push_model_text("DROP TABLE forests;");
  ASSERT_TRUE(ack2.has_value());
  EXPECT_FALSE(ack2->ok);

  // The original 10-tree model still answers, bit-exact.
  const ml::DataSet rows = make_query_rows();
  const std::optional<std::vector<std::vector<double>>> votes =
      client.classify(rows);
  ASSERT_TRUE(votes.has_value());
  EXPECT_EQ(*votes, forest.vote_fractions_batch(rows));
  server.stop();
}

// True when `v` is an exact multiple of 1/num_trees (vote fractions are
// integer tree counts over num_trees, and both 10ths and 7ths are exact
// in double for the k/N values a forest can emit).
bool fits_denominator(double v, int num_trees) {
  const double scaled = v * num_trees;
  const double rounded = std::round(scaled);
  return scaled == rounded && rounded >= 0 && rounded <= num_trees;
}

TEST(RpcLoopback, ModelPushHotSwapNeverMixesForestsMidBatch) {
  // Serve a 10-tree forest, hammer it with classify batches from two
  // threads while the main thread repeatedly swaps between a 10-tree and a
  // 7-tree forest. Every reply must be internally consistent with exactly
  // one forest: all votes in one reply fit k/10 or all fit k/7. A torn
  // swap would produce a reply mixing denominators (or a crash).
  const ml::RandomForest ten = make_small_forest(10);
  const ml::RandomForest seven = make_small_forest(7, /*seed=*/5);

  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);
  server.set_forest(ten);
  server.start();

  std::ostringstream ten_text_s, seven_text_s;
  ml::save_forest(ten, ten_text_s);
  ml::save_forest(seven, seven_text_s);
  const std::string ten_text = ten_text_s.str();
  const std::string seven_text = seven_text_s.str();

  std::atomic<bool> stop{false};
  std::atomic<int> replies{0};
  std::atomic<int> violations{0};
  auto hammer = [&] {
    rpc::ClientConfig ccfg;
    ccfg.unix_socket = scfg.unix_socket;
    rpc::DecisionClient client(ccfg);
    const ml::DataSet rows = make_query_rows();
    while (!stop.load(std::memory_order_acquire)) {
      const std::optional<std::vector<std::vector<double>>> votes =
          client.classify(rows);
      if (!votes.has_value()) continue;  // transient (server busy swapping)
      replies.fetch_add(1);
      bool all_ten = true, all_seven = true;
      for (const std::vector<double>& row : *votes) {
        for (const double v : row) {
          if (!fits_denominator(v, 10)) all_ten = false;
          if (!fits_denominator(v, 7)) all_seven = false;
        }
      }
      if (!all_ten && !all_seven) violations.fetch_add(1);
    }
  };
  std::thread t1(hammer), t2(hammer);

  rpc::ClientConfig pcfg;
  pcfg.unix_socket = scfg.unix_socket;
  rpc::DecisionClient pusher(pcfg);
  for (int swap = 0; swap < 20; ++swap) {
    const std::optional<rpc::AckMsg> ack =
        pusher.push_model_text(swap % 2 == 0 ? seven_text : ten_text);
    ASSERT_TRUE(ack.has_value());
    EXPECT_TRUE(ack->ok) << ack->message;
  }
  stop.store(true, std::memory_order_release);
  t1.join();
  t2.join();
  server.stop();

  EXPECT_GT(replies.load(), 0);
  EXPECT_EQ(violations.load(), 0);
}

// ---------- stats pull: loopback ----------

#if LIBRA_OBS_ENABLED
// pull_stats() must return the snapshot labeled with the DAEMON's
// configured origin -- the controller never invents a label for a peer
// (the aggregator keys its delta chains on that string).
TEST(RpcLoopback, PullStatsReturnsDaemonLabeledSnapshot) {
  const ml::RandomForest forest = make_small_forest(10);
  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);  // default stats_origin "daemon"
  server.set_forest(forest);
  server.start();

  rpc::ClientConfig ccfg;
  ccfg.unix_socket = scfg.unix_socket;
  rpc::DecisionClient client(ccfg);
  ASSERT_TRUE(client.classify(make_query_rows()).has_value());

  const std::optional<rpc::StatsMsg> stats = client.pull_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->origin, "daemon");
  // The loopback daemon shares this process's registry, so its snapshot
  // carries the server-side counters the classify above just bumped.
  const auto* requests = stats->snapshot.find_counter("rpc.server.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GT(requests->value, 0u);
  const auto* classify_us =
      stats->snapshot.find_histogram("rpc.server.classify_us");
  ASSERT_NE(classify_us, nullptr);
  EXPECT_GT(classify_us->data.count, 0u);
  server.stop();

  // A custom stats_origin rides the same path, and RemoteBackend passes
  // it through as core::PeerStats verbatim.
  rpc::ServerConfig named;
  named.unix_socket = unique_socket_path();
  named.stats_origin = "daemon:rack12";
  rpc::DecisionServer named_server(named);
  named_server.set_forest(forest);
  named_server.start();
  rpc::ClientConfig ncfg;
  ncfg.unix_socket = named.unix_socket;
  rpc::RemoteBackend backend(ncfg);
  const std::optional<core::PeerStats> peer = backend.peer_stats();
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(peer->origin, "daemon:rack12");
  named_server.stop();

  // Against a dead daemon the pull degrades to nullopt, never throws.
  EXPECT_FALSE(backend.peer_stats().has_value());
}
#endif

// ---------- client telemetry: retries and reconnects ----------

#if LIBRA_OBS_ENABLED
std::uint64_t counter_now(const char* name) {
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  const auto* c = snap.find_counter(name);
  return c != nullptr ? c->value : 0u;
}

TEST(RpcClient, DeadSocketBurnsTheRetryWithoutAReconnect) {
  const std::uint64_t retries0 = counter_now("rpc.client.retries");
  const std::uint64_t reconnects0 = counter_now("rpc.client.reconnects");
  const std::uint64_t outages0 = counter_now("rpc.client.outages");

  rpc::ClientConfig dead;
  dead.unix_socket = unique_socket_path();  // never bound
  dead.deadline_ms = 50.0;
  rpc::DecisionClient client(dead);
  EXPECT_FALSE(client.classify(make_query_rows()).has_value());

  // One failed round trip, one counted retry on a connect that also
  // fails, one outage -- and no reconnect, because nothing connected.
  EXPECT_EQ(counter_now("rpc.client.retries"), retries0 + 1);
  EXPECT_EQ(counter_now("rpc.client.outages"), outages0 + 1);
  EXPECT_EQ(counter_now("rpc.client.reconnects"), reconnects0);
}

TEST(RpcClient, ServerRestartCountsOneRetryAndOneReconnect) {
  const ml::RandomForest forest = make_small_forest(10);
  const std::string path = unique_socket_path();
  auto serve = [&] {
    rpc::ServerConfig scfg;
    scfg.unix_socket = path;
    auto server = std::make_unique<rpc::DecisionServer>(scfg);
    server->set_forest(forest);
    server->start();
    return server;
  };

  auto server = serve();
  rpc::ClientConfig ccfg;
  ccfg.unix_socket = path;
  rpc::DecisionClient client(ccfg);
  ASSERT_TRUE(client.classify(make_query_rows()).has_value());

  const std::uint64_t retries0 = counter_now("rpc.client.retries");
  const std::uint64_t reconnects0 = counter_now("rpc.client.reconnects");

  // Restart the daemon on the same socket. The client's next classify
  // finds the stale connection dead, retries once on a fresh one, and
  // succeeds -- exactly one retry, exactly one reconnect.
  server->stop();
  server = serve();
  ASSERT_TRUE(client.classify(make_query_rows()).has_value());
  EXPECT_EQ(counter_now("rpc.client.retries"), retries0 + 1);
  EXPECT_EQ(counter_now("rpc.client.reconnects"), reconnects0 + 1);
  server->stop();
}
#endif

// ---------- trace propagation across the wire ----------

#if LIBRA_OBS_ENABLED
// The acceptance criterion for cross-process tracing: a daemon-side
// rpc.server.classify span must land in the SAME trace as the caller's
// span and parent directly under it. On the loopback both sides share
// this process's TraceBuffer, so one export shows the whole tree.
TEST(RpcTrace, DaemonClassifySpanParentsUnderCallerSpan) {
  const ml::RandomForest forest = make_small_forest(10);
  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);
  server.set_forest(forest);
  server.start();

  rpc::ClientConfig ccfg;
  ccfg.unix_socket = scfg.unix_socket;
  rpc::DecisionClient client(ccfg);

  obs::TraceBuffer& buf = obs::TraceBuffer::global();
  buf.clear();
  {
    OBS_SPAN("rpc_test.decide");
    ASSERT_TRUE(client.classify(make_query_rows()).has_value());
  }
  server.stop();  // quiesce the worker threads before exporting

  const testing::JsonValue root = testing::parse_json(buf.to_chrome_json());
  const testing::JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  const testing::JsonValue* decide = nullptr;
  const testing::JsonValue* served = nullptr;
  for (const testing::JsonValue& e : events->array) {
    const testing::JsonValue* n = e.find("name");
    if (n == nullptr) continue;
    if (n->str == "rpc_test.decide") decide = &e;
    if (n->str == "rpc.server.classify") served = &e;
  }
  ASSERT_NE(decide, nullptr);
  ASSERT_NE(served, nullptr);
  const testing::JsonValue* dargs = decide->find("args");
  const testing::JsonValue* sargs = served->find("args");
  ASSERT_NE(dargs, nullptr);
  ASSERT_NE(sargs, nullptr);
  // Same trace id across the socket; the daemon span's parent is the
  // caller's span id, and the caller is the root.
  EXPECT_EQ(sargs->find("trace")->str, dargs->find("trace")->str);
  EXPECT_EQ(sargs->find("parent")->str, dargs->find("span")->str);
  EXPECT_EQ(dargs->find("parent")->str, "0x0");
  buf.clear();
}
#endif

// ---------- fleet integration: loopback bit-identity ----------

// One station's whole world (same corpus as fleet_test).
struct Station {
  env::Environment env;
  array::PhasedArray ap;
  array::PhasedArray client;
  channel::Link link;
  std::unique_ptr<core::LinkController> controller;
  sim::SessionScript script;

  Station(const array::Codebook* codebook, geom::Vec2 client_pos,
          const core::LibraClassifier* clf)
      : env(env::make_lobby()),
        ap({2, 6}, 0.0, codebook),
        client(client_pos, 180.0, codebook),
        link(&env, &ap, &client) {
    if (clf != nullptr) {
      controller = std::make_unique<core::LibraController>(
          &link, &shared_error_model(), clf);
    } else {
      controller = std::make_unique<core::RaFirstController>(
          &link, &shared_error_model(), core::ControllerConfig{});
    }
  }
};

std::vector<std::unique_ptr<Station>> build_stations(
    const array::Codebook* codebook, const core::LibraClassifier* clf) {
  std::vector<std::unique_ptr<Station>> stations;
  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{10, 6}, clf));
  stations[0]->script.duration_ms = 1500.0;
  stations[0]->script.rx_trajectory =
      sim::Trajectory::stationary({10, 6}, 180.0);
  stations[0]->script.blockage.push_back({400.0, 1100.0, {{6, 6}, 0.3, 35.0}});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{12, 7}, clf));
  stations[1]->script.duration_ms = 1500.0;
  stations[1]->script.rx_trajectory =
      sim::Trajectory::walk({12, 7}, {17, 8}, 1500.0, geom::Vec2{2, 6});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{9, 5}, clf));
  stations[2]->script.duration_ms = 1500.0;
  stations[2]->script.rx_trajectory =
      sim::Trajectory::stationary({9, 5}, 180.0);
  stations[2]->script.interference.push_back(
      {300.0, 1000.0, {{10, 1}, 50.0, 0.5}});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{11, 6}, clf));
  stations[3]->script.duration_ms = 700.0;  // early finisher
  stations[3]->script.rx_trajectory =
      sim::Trajectory::stationary({11, 6}, 180.0);
  return stations;
}

sim::FleetResult run_station_fleet(const core::LibraClassifier* clf,
                                   std::uint64_t seed,
                                   core::DecisionBackend* backend = nullptr,
                                   int shards = 0, int num_threads = 1,
                                   const faults::FaultPlan& plan = {},
                                   int scrape_port = 0,
                                   double scrape_rollup_ms = 1000.0) {
  const array::Codebook codebook;
  auto stations = build_stations(&codebook, clf);
  std::vector<sim::FleetLink> members;
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  sim::FleetConfig cfg;
  cfg.seed = seed;
  cfg.keep_frame_logs = true;
  cfg.backend = backend;
  cfg.shards = shards;
  cfg.num_threads = num_threads;
  cfg.faults = plan;
  cfg.scrape_port = scrape_port;
  cfg.scrape_rollup_ms = scrape_rollup_ms;
  return sim::run_fleet(members, cfg);
}

void expect_frame_logs_identical(const sim::FleetResult& a,
                                 const sim::FleetResult& b) {
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    const sim::SessionResult& x = a.links[i];
    const sim::SessionResult& y = b.links[i];
    EXPECT_EQ(x.frames, y.frames) << "link " << i;
    EXPECT_EQ(x.adaptations_ba, y.adaptations_ba) << "link " << i;
    EXPECT_EQ(x.adaptations_ra, y.adaptations_ra) << "link " << i;
    EXPECT_EQ(x.outages, y.outages) << "link " << i;
    ASSERT_EQ(x.frame_log.size(), y.frame_log.size()) << "link " << i;
    for (std::size_t f = 0; f < x.frame_log.size(); ++f) {
      const core::FrameReport& p = x.frame_log[f];
      const core::FrameReport& q = y.frame_log[f];
      ASSERT_EQ(p.t_ms, q.t_ms) << "link " << i << " frame " << f;
      ASSERT_EQ(p.mcs, q.mcs) << "link " << i << " frame " << f;
      ASSERT_EQ(p.goodput_mbps, q.goodput_mbps)
          << "link " << i << " frame " << f;
      ASSERT_EQ(p.ack, q.ack) << "link " << i << " frame " << f;
      ASSERT_EQ(p.action, q.action) << "link " << i << " frame " << f;
    }
  }
  EXPECT_EQ(sim::degradation_digest(a), sim::degradation_digest(b));
}

// The acceptance criterion for the whole split: a loopback daemon serving
// the classifier's own forest is bit-identical to in-process inference --
// same frames, same digest -- at every (shards, num_threads) grid point.
TEST(RpcFleet, LoopbackRemoteBitIdenticalToLocalAcrossGrid) {
  const core::LibraClassifier clf = make_classifier();
  constexpr std::uint64_t kSeed = 77;
  const sim::FleetResult local = run_station_fleet(&clf, kSeed);

  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);
  server.set_forest(clf.forest());
  server.start();

  rpc::ClientConfig ccfg;
  ccfg.unix_socket = scfg.unix_socket;
  ccfg.deadline_ms = 5000.0;  // generous: CI machines stall
  rpc::RemoteBackend backend(ccfg);

  const struct {
    int shards;
    int threads;
  } grid[] = {{0, 1}, {1, 1}, {3, 2}, {2, 4}};
  for (const auto& g : grid) {
    const sim::FleetResult remote =
        run_station_fleet(&clf, kSeed, &backend, g.shards, g.threads);
    SCOPED_TRACE("shards=" + std::to_string(g.shards) +
                 " threads=" + std::to_string(g.threads));
    expect_frame_logs_identical(local, remote);
  }
  server.stop();
}

// ---------- fleet integration: outage degradation ----------

// A backend that is dead from frame 0 (nothing ever listened on the
// socket) must degrade exactly like a 100% classifier outage: the rung-2
// check fires at plan time, no jitter draws are consumed, and the frames
// are bit-identical. faults_test proves the outage run in turn equals the
// RA-first heuristic, closing the chain remote-dead == RA-first.
TEST(RpcFleet, DeadBackendFromStartEqualsFullClassifierOutage) {
  constexpr std::uint64_t kSeed = 77;

  core::LibraClassifier outage_clf = make_classifier();
  faults::FaultPlan outage;
  outage.seed = 5;
  outage.add(faults::FaultKind::kClassifierOutage, 1.0);
  const sim::FleetResult outaged =
      run_station_fleet(&outage_clf, kSeed, nullptr, 0, 1, outage);

  rpc::ClientConfig dead;
  dead.unix_socket = unique_socket_path();  // never bound
  dead.deadline_ms = 50.0;
  rpc::RemoteBackend backend(dead);
  core::LibraClassifier remote_clf = make_classifier();
  remote_clf.set_backend(&backend);  // plan-time transport check sees it
  const sim::FleetResult degraded = run_station_fleet(&remote_clf, kSeed);

  expect_frame_logs_identical(outaged, degraded);
#if LIBRA_OBS_ENABLED
  const auto* fallbacks =
      degraded.metrics.find_counter("rpc.outage_fallbacks");
  ASSERT_NE(fallbacks, nullptr);
  EXPECT_GT(fallbacks->value, 0u);
#endif
}

// 100% kRpcDrop against a live loopback backend must be frame-identical to
// 100% kClassifierOutage: both fire the same rung-2 check at plan time and
// neither consumes a fault draw (probability >= 1 windows are free), so
// the transport fault is indistinguishable from an inference outage.
TEST(RpcFleet, FullRpcDropEqualsFullClassifierOutage) {
  constexpr std::uint64_t kSeed = 77;
  constexpr std::uint64_t kFaultSeed = 5;

  core::LibraClassifier outage_clf = make_classifier();
  faults::FaultPlan outage;
  outage.seed = kFaultSeed;
  outage.add(faults::FaultKind::kClassifierOutage, 1.0);
  const sim::FleetResult outaged =
      run_station_fleet(&outage_clf, kSeed, nullptr, 0, 1, outage);

  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);
  core::LibraClassifier remote_clf = make_classifier();
  server.set_forest(remote_clf.forest());
  server.start();
  rpc::ClientConfig ccfg;
  ccfg.unix_socket = scfg.unix_socket;
  rpc::RemoteBackend backend(ccfg);
  remote_clf.set_backend(&backend);

  faults::FaultPlan drop;
  drop.seed = kFaultSeed;
  drop.add(faults::FaultKind::kRpcDrop, 1.0);
  const sim::FleetResult dropped =
      run_station_fleet(&remote_clf, kSeed, nullptr, 0, 1, drop);
  server.stop();

  expect_frame_logs_identical(outaged, dropped);
}

// An RPC delay at or past the deadline is an outage; below it, nothing
// changes (only telemetry notices).
TEST(RpcFleet, RpcDelayPastDeadlineIsAnOutageBelowItIsNot) {
  constexpr std::uint64_t kSeed = 77;
  constexpr std::uint64_t kFaultSeed = 5;

  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);
  core::LibraClassifier clf = make_classifier();
  server.set_forest(clf.forest());
  server.start();
  rpc::ClientConfig ccfg;
  ccfg.unix_socket = scfg.unix_socket;
  ccfg.deadline_ms = 250.0;
  rpc::RemoteBackend backend(ccfg);
  clf.set_backend(&backend);

  // Slow (at the deadline) == a full classifier outage.
  core::LibraClassifier outage_clf = make_classifier();
  faults::FaultPlan outage;
  outage.seed = kFaultSeed;
  outage.add(faults::FaultKind::kClassifierOutage, 1.0);
  const sim::FleetResult outaged =
      run_station_fleet(&outage_clf, kSeed, nullptr, 0, 1, outage);

  faults::FaultPlan slow;
  slow.seed = kFaultSeed;
  slow.add(faults::FaultKind::kRpcDelay, 1.0, 0.0, faults::kForever,
           /*magnitude=*/250.0);
  const sim::FleetResult delayed =
      run_station_fleet(&clf, kSeed, nullptr, 0, 1, slow);
  expect_frame_logs_identical(outaged, delayed);

  // Fast (under the deadline) == a clean loopback run.
  const sim::FleetResult clean = run_station_fleet(&clf, kSeed);
  faults::FaultPlan mild;
  mild.seed = kFaultSeed;
  mild.add(faults::FaultKind::kRpcDelay, 1.0, 0.0, faults::kForever,
           /*magnitude=*/10.0);
  const sim::FleetResult mildly_delayed =
      run_station_fleet(&clf, kSeed, nullptr, 0, 1, mild);
  server.stop();
  expect_frame_logs_identical(clean, mildly_delayed);
}

// Kill the daemon under a fleet that is mid-run via FleetConfig::backend:
// the decide-phase BackendOutageError path substitutes every affected
// row's plan-time fallback verdict. The run must complete every link, not
// crash, count its fallbacks, and stay deterministic (two identical
// dead-server runs produce the same digest).
TEST(RpcFleet, ServerKilledBeforeDecideDegradesAndStaysDeterministic) {
  constexpr std::uint64_t kSeed = 77;
  const core::LibraClassifier clf = make_classifier();

  auto run_against_killed_server = [&] {
    rpc::ServerConfig scfg;
    scfg.unix_socket = unique_socket_path();
    rpc::DecisionServer server(scfg);
    server.set_forest(clf.forest());
    server.start();
    rpc::ClientConfig ccfg;
    ccfg.unix_socket = scfg.unix_socket;
    ccfg.deadline_ms = 100.0;
    rpc::RemoteBackend backend(ccfg);
    // Establish the connection the fleet will try to use, then kill the
    // daemon: every classify hits a dead socket at decide time -- the
    // rung-2 check cannot pre-empt it because FleetConfig::backend is
    // invisible at plan time (that asymmetry is the point of this test).
    EXPECT_TRUE(backend.available());
    server.stop();
    return run_station_fleet(&clf, kSeed, &backend);
  };

#if LIBRA_OBS_ENABLED
  // Keep the snapshot alive: find_counter returns a pointer into it.
  const obs::MetricsSnapshot snap_before = obs::Registry::global().snapshot();
  const auto* before = snap_before.find_counter("rpc.outage_fallbacks");
  const std::uint64_t fallbacks_before =
      before != nullptr ? before->value : 0;
#endif
  const sim::FleetResult first = run_against_killed_server();
  EXPECT_GT(first.batched_rows, 0);
  const sim::FleetResult second = run_against_killed_server();
  ASSERT_EQ(first.links.size(), 4u);
  for (const sim::SessionResult& link : first.links) {
    EXPECT_GT(link.frames, 0);
  }
  expect_frame_logs_identical(first, second);
#if LIBRA_OBS_ENABLED
  const obs::MetricsSnapshot snap_after = obs::Registry::global().snapshot();
  const auto* after = snap_after.find_counter("rpc.outage_fallbacks");
  ASSERT_NE(after, nullptr);
  EXPECT_GT(after->value, fallbacks_before);
#endif
}

// ---------- fleet integration: live scrape ----------

// Bind an ephemeral TCP port on loopback and release it: the usual
// pick-a-free-port trick for handing run_fleet a concrete scrape port.
int free_tcp_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

// The observation-only contract: mounting the aggregator + scrape
// endpoint on a run must not perturb a single frame or the digest, even
// when the aggregator is concurrently pulling daemon stats over the SAME
// client connection the fleet classifies through.
TEST(RpcFleet, ScrapeEndpointIsObservationOnly) {
  constexpr std::uint64_t kSeed = 77;
  const core::LibraClassifier clf = make_classifier();

  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);
  server.set_forest(clf.forest());
  server.start();
  rpc::ClientConfig ccfg;
  ccfg.unix_socket = scfg.unix_socket;
  ccfg.deadline_ms = 5000.0;
  rpc::RemoteBackend backend(ccfg);

  const sim::FleetResult plain = run_station_fleet(&clf, kSeed, &backend);
  const sim::FleetResult scraped =
      run_station_fleet(&clf, kSeed, &backend, 0, 1, {}, free_tcp_port(),
                        /*scrape_rollup_ms=*/5.0);
  server.stop();
  expect_frame_logs_identical(plain, scraped);
}

#if LIBRA_OBS_ENABLED
// Holds every classify until release() so a run stays "mid-flight" for
// as long as the test needs to scrape it, then behaves like the wrapped
// backend. The 30s cap keeps a broken test from deadlocking the suite.
class GatedBackend final : public core::DecisionBackend {
 public:
  explicit GatedBackend(core::DecisionBackend* inner) : inner_(inner) {}

  std::string_view name() const override { return inner_->name(); }
  bool local() const override { return inner_->local(); }
  bool available() override { return inner_->available(); }
  double deadline_ms() const override { return inner_->deadline_ms(); }
  std::optional<core::PeerStats> peer_stats() override {
    return inner_->peer_stats();
  }
  std::vector<std::vector<double>> vote_batch(
      const ml::DataSet& rows) override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::seconds(30), [&] { return released_; });
    lock.unlock();
    return inner_->vote_batch(rows);
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  core::DecisionBackend* inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

// The merged-scrape acceptance criterion: while a fleet run is in
// flight, GET /metrics must return valid Prometheus text carrying
// controller-origin AND daemon-origin series in one document.
TEST(RpcFleet, MidRunScrapeServesMergedControllerAndDaemonSeries) {
  constexpr std::uint64_t kSeed = 77;
  const core::LibraClassifier clf = make_classifier();

  rpc::ServerConfig scfg;
  scfg.unix_socket = unique_socket_path();
  rpc::DecisionServer server(scfg);
  server.set_forest(clf.forest());
  server.start();
  rpc::ClientConfig ccfg;
  ccfg.unix_socket = scfg.unix_socket;
  ccfg.deadline_ms = 5000.0;
  rpc::RemoteBackend remote(ccfg);
  GatedBackend gated(&remote);

  const int port = free_tcp_port();
  std::thread fleet([&] {
    run_station_fleet(&clf, kSeed, &gated, 0, 1, {}, port,
                      /*scrape_rollup_ms=*/5.0);
  });

  // The run is parked on the gate; poll the live endpoint until one
  // scrape shows both origins (the aggregator needs a rollup or two to
  // pull the daemon's first snapshot over the idle client).
  std::string merged_body;
  for (int attempt = 0; attempt < 2000 && merged_body.empty(); ++attempt) {
    const std::optional<obs::HttpResponse> resp =
        obs::http_get("127.0.0.1", port, "/metrics", /*timeout_ms=*/500);
    if (resp.has_value() && resp->status == 200 &&
        resp->body.find("origin=\"controller\"") != std::string::npos &&
        resp->body.find("origin=\"daemon\"") != std::string::npos) {
      merged_body = resp->body;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  gated.release();
  fleet.join();
  server.stop();

  ASSERT_FALSE(merged_body.empty())
      << "no merged scrape within the polling window";
  // Spot-check that the merged document carries per-origin samples of
  // the daemon's own serving counters next to the controller's.
  EXPECT_NE(merged_body.find("libra_rpc_server_requests"), std::string::npos);
  EXPECT_NE(merged_body.find("libra_obs_aggregator_rollups"),
            std::string::npos);
}
#endif

}  // namespace
}  // namespace libra
