#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "util/cli.h"
#include "util/fft.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace libra::util {
namespace {

// ---------- Rng ----------

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.uniform(0, 1) == b.uniform(0, 1);
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  Rng a(7);
  Rng fork1 = a.fork();
  const double v1 = fork1.uniform(0, 1);

  Rng b(7);
  Rng fork2 = b.fork();
  const double v2 = fork2.uniform(0, 1);
  EXPECT_DOUBLE_EQ(v1, v2);
}

TEST(Rng, SuccessiveForksDiffer) {
  Rng a(7);
  Rng f1 = a.fork();
  Rng f2 = a.fork();
  EXPECT_NE(f1.uniform(0, 1), f2.uniform(0, 1));
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.15);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ---------- ThreadPool ----------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(50, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitFutureRethrows) {
  ThreadPool pool(2);
  auto future =
      pool.submit([] { throw std::invalid_argument("task failed"); });
  EXPECT_THROW(future.get(), std::invalid_argument);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ++ran; });
    }
  }  // destructor must run everything already enqueued
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, ResolveMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolve(0), 1);
  EXPECT_EQ(ThreadPool::resolve(1), 1);
  EXPECT_EQ(ThreadPool::resolve(6), 6);
}

TEST(ThreadPool, FreeHelperRunsInlineWithoutPool) {
  int sum = 0;
  parallel_for(nullptr, 10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

// ---------- RunningStats ----------

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  // Unbiased sample variance: m2 = 5, n - 1 = 3.
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

// merge() must agree with having added every sample serially, no matter
// how the samples were split across the merged partials (Chan's parallel
// variance update is order-invariant up to rounding).
TEST(RunningStats, MergeMatchesSerialAdd) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.gaussian(5.0, 3.0));

  RunningStats serial;
  for (double x : samples) serial.add(x);

  // Three unequal chunks, merged in two different orders.
  const std::size_t cuts[] = {0, 137, 612, samples.size()};
  RunningStats chunks[3];
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i) {
      chunks[c].add(samples[i]);
    }
  }
  RunningStats fwd = chunks[0];
  fwd.merge(chunks[1]);
  fwd.merge(chunks[2]);
  RunningStats rev = chunks[2];
  rev.merge(chunks[0]);
  rev.merge(chunks[1]);

  for (const RunningStats& merged : {fwd, rev}) {
    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_DOUBLE_EQ(merged.min(), serial.min());
    EXPECT_DOUBLE_EQ(merged.max(), serial.max());
    EXPECT_NEAR(merged.mean(), serial.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), serial.variance(), 1e-9);
  }
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  RunningStats empty;
  s.merge(empty);  // no-op
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);

  RunningStats other;
  other.merge(s);  // adopt
  EXPECT_EQ(other.count(), 2u);
  EXPECT_DOUBLE_EQ(other.mean(), 2.0);
  EXPECT_DOUBLE_EQ(other.min(), 1.0);
  EXPECT_DOUBLE_EQ(other.max(), 3.0);
}

// ---------- CliArgs ----------

TEST(CliArgs, NegativeOptionValuesBind) {
  // The historical bug: `--fat -1` treated "-1" as a new flag, leaving
  // --fat empty and "-1" dangling. Numeric-looking tokens must bind.
  const char* argv[] = {"libra", "simulate", "train.ds", "eval.ds",
                        "--fat", "-1", "--offset", "-2.5e3"};
  const CliArgs args = CliArgs::parse(8, argv, /*first=*/2);
  ASSERT_EQ(args.positional.size(), 2u);
  EXPECT_EQ(args.positional[0], "train.ds");
  EXPECT_EQ(args.positional[1], "eval.ds");
  EXPECT_EQ(args.str("fat"), "-1");
  EXPECT_DOUBLE_EQ(args.number("fat", 0.0), -1.0);
  EXPECT_DOUBLE_EQ(args.number("offset", 0.0), -2500.0);
}

TEST(CliArgs, AdjacentFlagsStayFlags) {
  const char* argv[] = {"prog", "--verbose", "--seed", "7", "--dry-run"};
  const CliArgs args = CliArgs::parse(5, argv);
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_TRUE(args.flag("dry-run"));
  EXPECT_EQ(args.str("verbose"), "");  // not given a value
  EXPECT_DOUBLE_EQ(args.number("seed", 0.0), 7.0);
  EXPECT_TRUE(args.positional.empty());
}

TEST(CliArgs, NumberFallsBackWhenAbsentAndThrowsWhenGarbage) {
  const char* argv[] = {"prog", "--name", "trace.json"};
  const CliArgs args = CliArgs::parse(3, argv);
  EXPECT_DOUBLE_EQ(args.number("missing", 4.5), 4.5);
  EXPECT_EQ(args.str("name"), "trace.json");
  EXPECT_THROW(args.number("name", 0.0), std::invalid_argument);
}

TEST(CliArgs, RequireKnownRejectsUnrecognizedOptions) {
  const char* argv[] = {"prog", "--sokcet", "/tmp/x", "--port", "9", "in.ds"};
  const CliArgs args = CliArgs::parse(6, argv);
  // The typo'd option must fail loudly, naming itself...
  try {
    args.require_known({"socket", "port"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--sokcet"), std::string::npos);
  }
  // ...and the exact spelling must pass (positionals are never options).
  EXPECT_NO_THROW(args.require_known({"sokcet", "port"}));
  // Multiple unknowns are all reported in one shot.
  try {
    args.require_known({"frames"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--sokcet"), std::string::npos);
    EXPECT_NE(what.find("--port"), std::string::npos);
  }
  // No options at all is trivially fine.
  const char* bare[] = {"prog", "a", "b"};
  EXPECT_NO_THROW(CliArgs::parse(3, bare).require_known({}));
}

TEST(CliArgs, LooksNumeric) {
  EXPECT_TRUE(looks_numeric("-1"));
  EXPECT_TRUE(looks_numeric("3.25"));
  EXPECT_TRUE(looks_numeric("-1.5e3"));
  EXPECT_FALSE(looks_numeric(""));
  EXPECT_FALSE(looks_numeric("-"));
  EXPECT_FALSE(looks_numeric("--flag"));
  EXPECT_FALSE(looks_numeric("1x"));
}

// ---------- EmpiricalCdf ----------

TEST(EmpiricalCdf, AtAndQuantile) {
  EmpiricalCdf cdf({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.5);
}

TEST(EmpiricalCdf, QuantileClampsInput) {
  EmpiricalCdf cdf({1.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(2.0), 2.0);
}

TEST(EmpiricalCdf, EmptyThrowsOnQuantile) {
  EmpiricalCdf cdf({});
  EXPECT_EQ(cdf.at(1.0), 0.0);
  EXPECT_THROW(cdf.quantile(0.5), std::invalid_argument);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  EmpiricalCdf cdf({5, 1, 1, 3, 2, 2, 2});
  const auto curve = cdf.curve();
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].first, curve[i - 1].first);
    EXPECT_GT(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Boxplot, FiveNumberSummary) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const BoxplotSummary b = boxplot(v);
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.median, 5);
  EXPECT_DOUBLE_EQ(b.max, 9);
  EXPECT_DOUBLE_EQ(b.q1, 3);
  EXPECT_DOUBLE_EQ(b.q3, 7);
  EXPECT_DOUBLE_EQ(b.mean, 5);
  EXPECT_EQ(b.n, 9u);
}

TEST(Boxplot, EmptyIsZeroed) {
  const BoxplotSummary b = boxplot({});
  EXPECT_EQ(b.n, 0u);
  EXPECT_EQ(b.median, 0.0);
}

TEST(Percentile, MatchesQuantile) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(median(v), 25);
}

// ---------- Pearson ----------

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(Pearson, ConstantSideYieldsZero) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{5, 5, 5, 5};
  EXPECT_EQ(pearson(a, b), 0.0);
}

TEST(Pearson, MismatchedSizesYieldZero) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{1, 2};
  EXPECT_EQ(pearson(a, b), 0.0);
}

TEST(Pearson, InvariantToAffineTransform) {
  std::vector<double> a{1, 5, 2, 8, 3};
  std::vector<double> b{2, 3, 7, 1, 9};
  const double r1 = pearson(a, b);
  std::vector<double> a2;
  for (double x : a) a2.push_back(3.0 * x + 10.0);
  EXPECT_NEAR(pearson(a2, b), r1, 1e-12);
}

// ---------- FFT ----------

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> data(8, 0.0);
  data[0] = 1.0;
  fft(data);
  for (const auto& x : data) {
    EXPECT_NEAR(std::abs(x), 1.0, 1e-12);
  }
}

TEST(Fft, RoundTripInverse) {
  std::vector<std::complex<double>> data;
  for (int i = 0; i < 16; ++i) data.emplace_back(i * 0.5, -i * 0.25);
  const auto original = data;
  fft(data);
  fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, SinglebinSine) {
  const int n = 64;
  std::vector<std::complex<double>> data(n);
  for (int i = 0; i < n; ++i) {
    data[(std::size_t)i] = std::sin(2.0 * std::numbers::pi * 4.0 * i / n);
  }
  fft(data);
  // Energy concentrated in bins 4 and 60.
  EXPECT_NEAR(std::abs(data[4]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[60]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[5]), 0.0, 1e-9);
}

TEST(Fft, NonPowerOfTwoThrows) {
  std::vector<std::complex<double>> data(6, 0.0);
  EXPECT_THROW(fft(data), std::invalid_argument);
}

TEST(Fft, ParsevalHolds) {
  std::vector<std::complex<double>> data;
  Rng rng(11);
  for (int i = 0; i < 32; ++i) {
    data.emplace_back(rng.gaussian(0, 1), rng.gaussian(0, 1));
  }
  double time_energy = 0.0;
  for (const auto& x : data) time_energy += std::norm(x);
  fft(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / data.size(), time_energy, 1e-9);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(129), 256u);
}

TEST(Fft, MagnitudeSpectrumPadsAndHalves) {
  std::vector<double> sig(100, 0.0);
  sig[0] = 1.0;
  const auto mag = magnitude_spectrum(sig);
  EXPECT_EQ(mag.size(), 64u);  // next_pow2(100)=128, half = 64
  for (double m : mag) EXPECT_NEAR(m, 1.0, 1e-12);
}

TEST(Fft, MagnitudeSpectrumEmptyInput) {
  EXPECT_TRUE(magnitude_spectrum({}).empty());
}

// ---------- SIMD dispatch parity ----------
// The vectorized stats/FFT kernels promise bit-identical results to their
// scalar loops, so fleet digests cannot move with the dispatched ISA.
// These run the same inputs through the auto dispatch and the forced-scalar
// override and require exact equality.

TEST(SimdParity, CdfBatchQueriesBitIdenticalToScalar) {
  Rng rng(7);
  std::vector<double> samples(257);  // odd size: exercises remainder lanes
  for (auto& s : samples) s = rng.gaussian(0, 5);
  const EmpiricalCdf cdf(samples);
  std::vector<double> xs(131), qs(131);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.gaussian(0, 8);
    qs[i] = rng.uniform(-0.2, 1.2);  // quantile_many clamps out-of-range
  }
  xs[3] = std::numeric_limits<double>::quiet_NaN();  // counted below min
  std::vector<double> at_auto(xs.size()), q_auto(qs.size());
  cdf.at_many(xs, at_auto);
  cdf.quantile_many(qs, q_auto);
  // Batched queries agree with the one-at-a-time reference API.
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (std::isnan(xs[i])) continue;
    EXPECT_EQ(at_auto[i], cdf.at(xs[i])) << "i=" << i;
  }
  simd::ScopedForceScalar scalar;
  std::vector<double> at_ref(xs.size()), q_ref(qs.size());
  cdf.at_many(xs, at_ref);
  cdf.quantile_many(qs, q_ref);
  EXPECT_EQ(at_auto, at_ref);
  EXPECT_EQ(q_auto, q_ref);
}

TEST(SimdParity, PearsonBitIdenticalToScalar) {
  Rng rng(8);
  for (const int n : {1, 3, 4, 7, 64, 129}) {
    std::vector<double> a(static_cast<std::size_t>(n));
    std::vector<double> b(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      a[static_cast<std::size_t>(i)] = rng.gaussian(0, 3);
      b[static_cast<std::size_t>(i)] = rng.gaussian(1, 2);
    }
    const double auto_r = pearson(a, b);
    simd::ScopedForceScalar scalar;
    EXPECT_EQ(auto_r, pearson(a, b)) << "n=" << n;
  }
}

TEST(SimdParity, MagnitudeSpectrumBitIdenticalToScalar) {
  Rng rng(9);
  std::vector<double> sig(300);  // pads to 512
  for (auto& s : sig) s = rng.uniform(-1, 1);
  const std::vector<double> auto_mag = magnitude_spectrum(sig);
  simd::ScopedForceScalar scalar;
  EXPECT_EQ(auto_mag, magnitude_spectrum(sig));
}

class FftSizes : public ::testing::TestWithParam<int> {};

TEST_P(FftSizes, RoundTripAtManySizes) {
  const int n = GetParam();
  std::vector<std::complex<double>> data((std::size_t)n);
  Rng rng(n);
  for (auto& x : data) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto original = data;
  fft(data);
  fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 512, 2048));

// ---------- Units ----------

TEST(Units, DbLinearRoundTrip) {
  for (double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 20.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-12);
  }
}

TEST(Units, DbmAddition) {
  // Two equal powers sum to +3 dB.
  EXPECT_NEAR(dbm_add(0.0, 0.0), 3.0103, 1e-3);
  // A much weaker signal barely contributes.
  EXPECT_NEAR(dbm_add(0.0, -40.0), 0.0, 1e-3);
}

TEST(Units, Wavelength60GHz) {
  EXPECT_NEAR(wavelength_m(), 0.00496, 1e-4);
}

TEST(Units, MbpsToBytesPerMs) {
  EXPECT_DOUBLE_EQ(mbps_to_bytes_per_ms(8.0), 1000.0);
}

// ---------- Table ----------

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.to_csv(), "a,b,c\nonly,,\n");
}

TEST(Table, NumericRowFormatting) {
  Table t({"label", "x", "y"});
  t.add_row_numeric("row", {1.234, 5.678}, 1);
  EXPECT_NE(t.to_csv().find("1.2"), std::string::npos);
  EXPECT_NE(t.to_csv().find("5.7"), std::string::npos);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

}  // namespace
}  // namespace libra::util
