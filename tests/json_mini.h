// Forwarder: the test-suite JSON parser was promoted to util/json.h when
// `libra top` needed it to read /series.json. Tests keep their historical
// libra::testing:: spellings through these aliases.
#pragma once

#include "util/json.h"

namespace libra::testing {

using util::JsonValue;
using util::parse_json;

}  // namespace libra::testing
