// Randomized property tests: seeded sweeps asserting structural invariants
// that must hold for ANY input, across the geometry, channel, PHY and ML
// layers.
#include <gtest/gtest.h>

#include <memory>

#include "channel/link.h"
#include "channel/path_tracer.h"
#include "env/registry.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "phy/error_model.h"
#include "trace/ground_truth.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace libra {
namespace {

class SeededProperty : public ::testing::TestWithParam<int> {};

// --- geometry: mirror is an involution and preserves distances to the line.
TEST_P(SeededProperty, MirrorInvolutionAndIsometry) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    const geom::Segment line{{rng.uniform(-10, 10), rng.uniform(-10, 10)},
                             {rng.uniform(-10, 10), rng.uniform(-10, 10)}};
    if (line.length() < 1e-6) continue;
    const geom::Vec2 p{rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const geom::Vec2 m = geom::mirror(p, line);
    const geom::Vec2 back = geom::mirror(m, line);
    EXPECT_NEAR(geom::distance(back, p), 0.0, 1e-9);
    // Distance to the (infinite) line is preserved: check via two points.
    EXPECT_NEAR(geom::distance(p, line.a), geom::distance(m, line.a), 1e-9);
    EXPECT_NEAR(geom::distance(p, line.b), geom::distance(m, line.b), 1e-9);
  }
}

// --- geometry: wrap_angle_deg is idempotent and 360-periodic.
TEST_P(SeededProperty, AngleWrapProperties) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform(-2000, 2000);
    const double w = geom::wrap_angle_deg(a);
    EXPECT_GT(w, -180.0 - 1e-9);
    EXPECT_LE(w, 180.0 + 1e-9);
    EXPECT_NEAR(geom::wrap_angle_deg(w), w, 1e-9);
    EXPECT_NEAR(geom::wrap_angle_deg(a + 360.0), w, 1e-9);
  }
}

// --- channel: path lengths are symmetric under Tx/Rx exchange (reciprocity
// of the geometry), and every path is at least the straight-line distance.
TEST_P(SeededProperty, RayTracerGeometricReciprocity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  const env::Environment box("box",
                             env::rectangle_walls(18, 9, 7, 7, 7, 7));
  const channel::PathTracer tracer;
  for (int i = 0; i < 8; ++i) {
    const geom::Vec2 a{rng.uniform(1, 17), rng.uniform(1, 8)};
    const geom::Vec2 b{rng.uniform(1, 17), rng.uniform(1, 8)};
    if (geom::distance(a, b) < 0.5) continue;
    auto fwd = tracer.trace(box, a, b);
    auto rev = tracer.trace(box, b, a);
    ASSERT_EQ(fwd.size(), rev.size());
    std::vector<double> fl, rl;
    for (const auto& p : fwd) {
      EXPECT_GE(p.length_m, geom::distance(a, b) - 1e-9);
      fl.push_back(p.length_m);
    }
    for (const auto& p : rev) rl.push_back(p.length_m);
    std::sort(fl.begin(), fl.end());
    std::sort(rl.begin(), rl.end());
    for (std::size_t k = 0; k < fl.size(); ++k) {
      EXPECT_NEAR(fl[k], rl[k], 1e-6);
    }
  }
}

// --- channel: total received power never exceeds the aligned free-space
// bound and never increases when a blocker is added.
TEST_P(SeededProperty, BlockersNeverAddPower) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  env::Environment box("box", env::rectangle_walls(18, 9, 7, 7, 7, 7));
  const array::Codebook cb;
  array::PhasedArray tx({2, 4.5}, 0.0, &cb);
  array::PhasedArray rx({15, 4.5}, 180.0, &cb);
  channel::Link link(&box, &tx, &rx);
  for (int i = 0; i < 10; ++i) {
    const array::BeamId tb = rng.uniform_int(0, cb.size() - 1);
    const array::BeamId rb = rng.uniform_int(0, cb.size() - 1);
    const double before = link.rx_power_dbm(tb, rb);
    box.add_blocker({{rng.uniform(3, 14), rng.uniform(1, 8)},
                     rng.uniform(0.1, 0.5), rng.uniform(5, 35)});
    const double after = link.rx_power_dbm(tb, rb);
    EXPECT_LE(after, before + 1e-9);
    box.clear_blockers();
  }
}

// --- phy: throughput is continuous-ish and bounded; CDR in [0,1] always.
TEST_P(SeededProperty, ErrorModelBounds) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 400);
  const phy::McsTable table;
  const phy::ErrorModel em(&table);
  for (int i = 0; i < 200; ++i) {
    const double snr = rng.uniform(-30, 60);
    const phy::McsIndex m = rng.uniform_int(0, table.max_mcs());
    const double cdr = em.expected_cdr(m, snr);
    EXPECT_GE(cdr, 0.0);
    EXPECT_LE(cdr, 1.0);
    const double tput = em.expected_throughput_mbps(m, snr);
    EXPECT_GE(tput, 0.0);
    EXPECT_LE(tput, table.max_rate_mbps());
  }
}

// --- trace: ground-truth utilities are bounded and the BA label fraction
// weakly rises as the BA overhead drops (cheaper BA is never less
// attractive).
TEST_P(SeededProperty, GroundTruthMonotoneInBaOverhead) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  int ba_cheap = 0, ba_expensive = 0;
  for (int i = 0; i < 60; ++i) {
    const int init = rng.uniform_int(2, 8);
    const int after_ra = rng.uniform_int(-1, init);
    const int after_ba = rng.uniform_int(after_ra < 0 ? 0 : after_ra, init);
    const trace::CaseRecord rec =
        libra::testing::make_record(init, after_ra, after_ba);
    trace::GroundTruthConfig cheap;
    cheap.alpha = 0.5;
    cheap.ba_overhead_ms = 0.5;
    trace::GroundTruthConfig expensive = cheap;
    expensive.ba_overhead_ms = 250.0;
    const auto g1 = trace::label_case(rec, cheap);
    const auto g2 = trace::label_case(rec, expensive);
    for (const auto& g : {g1, g2}) {
      EXPECT_GE(g.utility_ra, -1e-9);
      EXPECT_LE(g.utility_ra, 1.0 + 1e-9);
      EXPECT_GE(g.utility_ba, -1e-9);
      EXPECT_LE(g.utility_ba, 1.0 + 1e-9);
    }
    ba_cheap += g1.label == trace::Action::kBA;
    ba_expensive += g2.label == trace::Action::kBA;
  }
  EXPECT_GE(ba_cheap, ba_expensive);
}

// --- ml: a forest's vote fractions always form a distribution, and its
// arg-max matches predict().
TEST_P(SeededProperty, ForestVotesAreDistribution) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 600);
  ml::DataSet d(3);
  for (int i = 0; i < 120; ++i) {
    const int y = rng.uniform_int(0, 2);
    d.add(std::vector<double>{y + rng.gaussian(0, 0.6), rng.gaussian(0, 1),
                              rng.gaussian(0, 1)},
          y);
  }
  ml::RandomForestConfig cfg;
  cfg.num_trees = 15;
  ml::RandomForest forest(cfg);
  forest.fit(d, rng);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> x{rng.uniform(-1, 3), rng.gaussian(0, 1),
                                rng.gaussian(0, 1)};
    const auto votes = forest.vote_fractions(x);
    double sum = 0.0;
    std::size_t best = 0;
    for (std::size_t c = 0; c < votes.size(); ++c) {
      EXPECT_GE(votes[c], 0.0);
      sum += votes[c];
      if (votes[c] > votes[best]) best = c;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // predict() and arg-max agree up to tie-breaking order.
    EXPECT_GE(votes[(std::size_t)forest.predict(x)], votes[best] - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace libra
