// End-to-end integration tests: the full pipeline from scenario generation
// through trace collection, labeling, model training, and trace-driven
// evaluation, on reduced-size inputs so the suite stays fast.
#include <gtest/gtest.h>

#include <memory>

#include "core/classifier.h"
#include "ml/cross_validation.h"
#include "ml/random_forest.h"
#include "phy/error_model.h"
#include "sim/event_sim.h"
#include "sim/timeline.h"
#include "trace/dataset.h"

namespace libra {
namespace {

// Shared across tests in this file; collected once.
struct Pipeline {
  phy::McsTable table;
  phy::ErrorModel em{&table};
  trace::Dataset training;
  trace::Dataset testing;

  Pipeline() {
    trace::CollectOptions opt;
    opt.with_na_augmentation = true;
    training = trace::collect_dataset(trace::training_scenarios(), em, opt);
    opt.seed = 77;
    testing = trace::collect_dataset(trace::testing_scenarios(), em, opt);
  }

  static const Pipeline& get() {
    static Pipeline p;
    return p;
  }
};

ml::DataSet to_ml(const std::vector<trace::LabeledEntry>& entries) {
  ml::DataSet d(trace::FeatureVector::kDim);
  for (const auto& e : entries) {
    d.add(e.x.v, e.y == trace::Action::kBA ? 0 : 1);
  }
  return d;
}

TEST(Integration, DatasetShapeMatchesPaper) {
  const auto& p = Pipeline::get();
  trace::GroundTruthConfig gt;
  const auto s = trace::summarize(p.training, gt);
  // Table 1 shape: BA dominates displacement and blockage, RA dominates
  // interference, overall BA majority.
  EXPECT_GT(s.displacement.ba, s.displacement.ra);
  EXPECT_GT(s.blockage.ba, 3 * s.blockage.ra);
  EXPECT_GT(s.interference.ra, s.interference.ba);
  EXPECT_GT(s.overall.ba, s.overall.ra);
  EXPECT_GT(s.overall.total, 300);
}

TEST(Integration, TestingDatasetShape) {
  const auto& p = Pipeline::get();
  trace::GroundTruthConfig gt;
  const auto s = trace::summarize(p.testing, gt);
  EXPECT_GT(s.overall.total, 100);
  EXPECT_GT(s.displacement.ba, s.displacement.ra);
  EXPECT_GT(s.interference.ra, s.interference.ba);
}

TEST(Integration, RandomForestLearnsTheTask) {
  const auto& p = Pipeline::get();
  trace::GroundTruthConfig gt;
  const ml::DataSet train = to_ml(p.training.labeled(gt));
  util::Rng rng(1);
  const auto cv = ml::cross_validate(
      train, [] { return std::make_unique<ml::RandomForest>(); }, 5, 2, rng);
  EXPECT_GT(cv.accuracy, 0.82);  // paper: 98%, our simulated floor: >82%
}

TEST(Integration, CrossBuildingAccuracyDropsButStaysUseful) {
  const auto& p = Pipeline::get();
  trace::GroundTruthConfig gt;
  const ml::DataSet train = to_ml(p.training.labeled(gt));
  const ml::DataSet test = to_ml(p.testing.labeled(gt));
  util::Rng rng(2);
  const auto xb = ml::train_test(
      train, test, [] { return std::make_unique<ml::RandomForest>(); }, rng);
  EXPECT_GT(xb.accuracy, 0.70);  // paper: 88%
}

TEST(Integration, GiniImportanceSpreadAcrossMetrics) {
  const auto& p = Pipeline::get();
  trace::GroundTruthConfig gt;
  const ml::DataSet train = to_ml(p.training.labeled(gt));
  util::Rng rng(3);
  ml::RandomForest rf;
  rf.fit(train, rng);
  // Table 3's conclusion: no metric dominates, all contribute.
  for (double imp : rf.feature_importances()) {
    EXPECT_LT(imp, 0.6);
  }
  int contributing = 0;
  for (double imp : rf.feature_importances()) contributing += imp > 0.02;
  EXPECT_GE(contributing, 5);
}

TEST(Integration, LibraTracksOracleOnBytes) {
  const auto& p = Pipeline::get();
  trace::GroundTruthConfig gt;
  gt.alpha = 0.7;
  gt.fat_ms = 2.0;
  gt.ba_overhead_ms = 5.0;
  util::Rng rng(4);
  core::LibraClassifier clf;
  clf.train(p.training, gt, rng);
  const sim::EventSimulator simulator(&clf);
  sim::EventParams ep;
  ep.fat_ms = 2.0;
  ep.ba_overhead_ms = 5.0;
  ep.rule = gt;

  double oracle = 0.0, libra = 0.0, ra_first = 0.0;
  for (const auto& rec : p.testing.records) {
    oracle += simulator.run(rec, core::Strategy::kOracleData, ep, rng).bytes_mb;
    libra += simulator.run(rec, core::Strategy::kLibra, ep, rng).bytes_mb;
    ra_first +=
        simulator.run(rec, core::Strategy::kRaFirst, ep, rng).bytes_mb;
  }
  // The paper's headline: LiBRA close to the oracle, clearly above RA First.
  EXPECT_GT(libra, 0.90 * oracle);
  EXPECT_GT(libra, ra_first);
}

TEST(Integration, BaFirstDelayExplodesAtHighOverhead) {
  const auto& p = Pipeline::get();
  trace::GroundTruthConfig gt;
  gt.alpha = 0.5;
  gt.ba_overhead_ms = 250.0;
  util::Rng rng(5);
  core::LibraClassifier clf;
  clf.train(p.training, gt, rng);
  const sim::EventSimulator simulator(&clf);
  sim::EventParams ep;
  ep.ba_overhead_ms = 250.0;
  ep.rule = gt;

  double ba_first_delay = 0.0, libra_delay = 0.0;
  int broken = 0;
  for (const auto& rec : p.testing.records) {
    const auto b = simulator.run(rec, core::Strategy::kBaFirst, ep, rng);
    const auto l = simulator.run(rec, core::Strategy::kLibra, ep, rng);
    if (b.recovery_delay_ms > 0 || l.recovery_delay_ms > 0) {
      ++broken;
      ba_first_delay += b.recovery_delay_ms;
      libra_delay += l.recovery_delay_ms;
    }
  }
  ASSERT_GT(broken, 10);
  // With 250 ms sweeps, always-BA pays far more recovery delay than LiBRA.
  EXPECT_GT(ba_first_delay, 1.2 * libra_delay);
}

TEST(Integration, EvaluationIsDeterministic) {
  const auto& p = Pipeline::get();
  trace::GroundTruthConfig gt;
  const sim::EventSimulator simulator;
  sim::EventParams ep;
  ep.rule = gt;
  const auto& rec = p.testing.records.front();
  util::Rng rng1(9), rng2(9);
  const auto a = simulator.run(rec, core::Strategy::kRaFirst, ep, rng1);
  const auto b = simulator.run(rec, core::Strategy::kRaFirst, ep, rng2);
  EXPECT_DOUBLE_EQ(a.bytes_mb, b.bytes_mb);
  EXPECT_DOUBLE_EQ(a.recovery_delay_ms, b.recovery_delay_ms);
}

TEST(Integration, ThreeClassModelUsableInController) {
  const auto& p = Pipeline::get();
  trace::GroundTruthConfig gt;
  util::Rng rng(6);
  core::LibraClassifier clf;
  clf.train(p.training, gt, rng);
  // Classify all testing entries; predictions must be one of the 3 classes
  // and mostly correct.
  int correct = 0, total = 0;
  for (const auto& e : p.testing.labeled3(gt)) {
    const trace::Action a = clf.classify(e.x, rng);
    correct += a == e.y;
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.75);
}

TEST(Integration, TimelineEvaluationRuns) {
  const auto& p = Pipeline::get();
  trace::GroundTruthConfig gt;
  util::Rng rng(7);
  core::LibraClassifier clf;
  clf.train(p.training, gt, rng);
  const sim::EventSimulator simulator(&clf);
  sim::EventParams ep;
  ep.rule = gt;
  const sim::RecordPools pools = sim::RecordPools::from_dataset(p.testing);
  for (sim::ScenarioType type : sim::kAllScenarioTypes) {
    util::Rng tl_rng(100);
    const auto timeline = sim::make_timeline(type, pools, {}, tl_rng);
    const auto oracle = sim::run_timeline(
        timeline, core::Strategy::kOracleData, simulator, ep, rng);
    const auto libra = sim::run_timeline(timeline, core::Strategy::kLibra,
                                         simulator, ep, rng);
    EXPECT_GT(oracle.bytes_mb, 0.0);
    EXPECT_GE(oracle.bytes_mb + 1e-9, libra.bytes_mb * 0.0);  // sanity
    EXPECT_GT(libra.bytes_mb, 0.5 * oracle.bytes_mb);
  }
}

}  // namespace
}  // namespace libra
