#include <gtest/gtest.h>

#include <cmath>

#include "channel/link.h"
#include "env/registry.h"
#include "phy/error_model.h"
#include "phy/mcs.h"
#include "phy/pdp.h"
#include "phy/sampler.h"
#include "util/units.h"

namespace libra::phy {
namespace {

// ---------- MCS table ----------

TEST(McsTable, DefaultHasNineEntries) {
  const McsTable t;
  EXPECT_EQ(t.size(), 9);
  EXPECT_DOUBLE_EQ(t.rate_mbps(0), 300.0);
  EXPECT_DOUBLE_EQ(t.max_rate_mbps(), 4750.0);
}

TEST(McsTable, RatesAndThresholdsMonotonic) {
  const McsTable t;
  for (int m = 1; m < t.size(); ++m) {
    EXPECT_GT(t.rate_mbps(m), t.rate_mbps(m - 1));
    EXPECT_GT(t.entry(m).snr_threshold_db, t.entry(m - 1).snr_threshold_db);
  }
}

TEST(McsTable, HighestSupported) {
  const McsTable t;
  EXPECT_EQ(t.highest_supported(-10.0), -1);
  EXPECT_EQ(t.highest_supported(3.0), 0);
  EXPECT_EQ(t.highest_supported(100.0), 8);
  EXPECT_EQ(t.highest_supported(t.entry(4).snr_threshold_db), 4);
}

TEST(McsTable, OutOfRangeThrows) {
  const McsTable t;
  EXPECT_THROW(t.entry(-1), std::out_of_range);
  EXPECT_THROW(t.entry(9), std::out_of_range);
}

TEST(McsTable, EmptyTableThrows) {
  EXPECT_THROW(McsTable(std::vector<McsEntry>{}), std::invalid_argument);
}

TEST(McsTable, Ieee80211adTable) {
  const McsTable t = ieee80211ad_sc_table();
  EXPECT_EQ(t.size(), 12);
  EXPECT_DOUBLE_EQ(t.rate_mbps(0), 385.0);
  EXPECT_DOUBLE_EQ(t.max_rate_mbps(), 4620.0);
}

TEST(McsTable, CodewordSizesInX60Range) {
  const McsTable t;
  for (const auto& e : t.entries()) {
    EXPECT_GE(e.codeword_bytes, 180);
    EXPECT_LE(e.codeword_bytes, 1080);
  }
}

// ---------- error model ----------

TEST(ErrorModel, HalfSuccessAtThreshold) {
  const McsTable t;
  const ErrorModel em(&t);
  for (int m = 0; m < t.size(); ++m) {
    EXPECT_NEAR(em.codeword_success_prob(m, t.entry(m).snr_threshold_db), 0.5,
                1e-9);
  }
}

TEST(ErrorModel, NinetyPercentAtOneWidthAbove) {
  const McsTable t;
  ErrorModelConfig cfg;
  const ErrorModel em(&t, cfg);
  EXPECT_NEAR(em.codeword_success_prob(
                  0, t.entry(0).snr_threshold_db + cfg.waterfall_width_db),
              0.9, 1e-6);
}

TEST(ErrorModel, MonotonicInSnr) {
  const McsTable t;
  const ErrorModel em(&t);
  double prev = 0.0;
  for (double snr = -10.0; snr < 40.0; snr += 0.5) {
    const double p = em.codeword_success_prob(4, snr);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(ErrorModel, ThroughputCapsAtFramingEfficiency) {
  const McsTable t;
  const ErrorModel em(&t);
  const double tput = em.expected_throughput_mbps(8, 100.0);
  EXPECT_NEAR(tput, 4750.0 * em.config().framing_efficiency, 1e-6);
}

TEST(ErrorModel, LowerMcsWinsBelowThreshold) {
  const McsTable t;
  const ErrorModel em(&t);
  // 1 dB below MCS 5's threshold, MCS 4 out-delivers MCS 5.
  const double snr = t.entry(5).snr_threshold_db - 1.0;
  EXPECT_GT(em.expected_throughput_mbps(4, snr),
            em.expected_throughput_mbps(5, snr));
}

TEST(ErrorModel, InvalidConfigThrows) {
  const McsTable t;
  EXPECT_THROW(ErrorModel(nullptr), std::invalid_argument);
  ErrorModelConfig bad;
  bad.waterfall_width_db = 0.0;
  EXPECT_THROW(ErrorModel(&t, bad), std::invalid_argument);
}

class McsSweep : public ::testing::TestWithParam<int> {};

TEST_P(McsSweep, ThroughputUnimodalOverLadder) {
  // At any SNR, expected throughput as a function of MCS rises then falls:
  // there is a single best MCS (what RA searches for).
  const McsTable t;
  const ErrorModel em(&t);
  const double snr = 2.0 + GetParam() * 3.0;
  int direction_changes = 0;
  double prev = em.expected_throughput_mbps(0, snr);
  bool rising = true;
  for (int m = 1; m < t.size(); ++m) {
    const double cur = em.expected_throughput_mbps(m, snr);
    if (rising && cur < prev) {
      rising = false;
      ++direction_changes;
    } else if (!rising && cur > prev + 1e-9) {
      ++direction_changes;
    }
    prev = cur;
  }
  EXPECT_LE(direction_changes, 1);
}

INSTANTIATE_TEST_SUITE_P(SnrGrid, McsSweep, ::testing::Range(0, 10));

// ---------- PDP ----------

TEST(Pdp, TapsAtPathDelays) {
  std::vector<channel::PathContribution> contributions = {
      {-50.0, 20.0, 0, 0, 0},
      {-60.0, 45.0, 0, 0, 1},
  };
  PdpConfig cfg;
  const auto pdp = synthesize_pdp(contributions, cfg);
  ASSERT_EQ(static_cast<int>(pdp.size()), cfg.num_taps);
  EXPECT_NEAR(pdp[20], util::dbm_to_mw(-50.0), util::dbm_to_mw(-50.0) * 0.01);
  EXPECT_NEAR(pdp[45], util::dbm_to_mw(-60.0), util::dbm_to_mw(-60.0) * 0.01);
  EXPECT_NEAR(pdp[100], cfg.noise_floor_mw, cfg.noise_floor_mw * 0.01);
}

TEST(Pdp, OutOfWindowPathsDropped) {
  std::vector<channel::PathContribution> contributions = {
      {-50.0, 1e6, 0, 0, 0},  // 1 ms delay: far outside the window
  };
  const auto pdp = synthesize_pdp(contributions, {});
  for (double tap : pdp) EXPECT_LE(tap, 2e-12);
}

TEST(Pdp, CoincidentPathsAddPower) {
  std::vector<channel::PathContribution> contributions = {
      {-50.0, 20.0, 0, 0, 0},
      {-50.0, 20.2, 0, 0, 1},  // same tap after rounding
  };
  const auto pdp = synthesize_pdp(contributions, {});
  EXPECT_NEAR(pdp[20], 2.0 * util::dbm_to_mw(-50.0),
              util::dbm_to_mw(-50.0) * 0.02);
}

TEST(Pdp, TofIsStrongestTap) {
  std::vector<channel::PathContribution> contributions = {
      {-55.0, 30.0, 0, 0, 0},
      {-45.0, 60.0, 0, 0, 1},  // stronger, later
  };
  const auto pdp = synthesize_pdp(contributions, {});
  const auto tof = time_of_flight_ns(pdp, {});
  ASSERT_TRUE(tof.has_value());
  EXPECT_DOUBLE_EQ(*tof, 60.0);
}

TEST(Pdp, TofInfinityWhenNoSignal) {
  PdpConfig cfg;
  cfg.noise_floor_mw = 1e-9;
  std::vector<channel::PathContribution> weak = {{-95.0, 30.0, 0, 0, 0}};
  const auto pdp = synthesize_pdp(weak, cfg);
  EXPECT_FALSE(time_of_flight_ns(pdp, cfg).has_value());
}

TEST(Pdp, EmptyPdpHasNoTof) {
  EXPECT_FALSE(time_of_flight_ns({}, {}).has_value());
}

TEST(Pdp, CsiHasHalfSpectrumSize) {
  std::vector<double> pdp(256, 1e-12);
  pdp[10] = 1e-6;
  const auto csi = csi_from_pdp(pdp);
  EXPECT_EQ(csi.size(), 128u);
}

// ---------- sampler ----------

struct SamplerFixture : ::testing::Test {
  SamplerFixture()
      : em(&table),
        environment("box", env::rectangle_walls(20, 10, 8, 8, 8, 8)),
        tx({2, 5}, 0.0, &codebook),
        rx({12, 5}, 180.0, &codebook),
        link(&environment, &tx, &rx),
        sampler(&em) {}

  McsTable table;
  ErrorModel em;
  array::Codebook codebook;
  env::Environment environment;
  array::PhasedArray tx;
  array::PhasedArray rx;
  channel::Link link;
  PhySampler sampler;
};

TEST_F(SamplerFixture, ObservationNearTruth) {
  util::Rng rng(1);
  const auto obs = sampler.observe(link, 12, 12, 4, rng);
  EXPECT_NEAR(obs.snr_db, link.snr_db(12, 12), 2.0);
  EXPECT_NEAR(obs.noise_dbm, link.noise_floor_dbm(12), 6.0);
  EXPECT_TRUE(obs.tof_ns.has_value());
  EXPECT_EQ(obs.mcs, 4);
  EXPECT_GE(obs.cdr, 0.0);
  EXPECT_LE(obs.cdr, 1.0);
}

TEST_F(SamplerFixture, ThroughputConsistentWithCdr) {
  util::Rng rng(1);
  const auto obs = sampler.observe(link, 12, 12, 3, rng);
  EXPECT_NEAR(obs.throughput_mbps,
              table.rate_mbps(3) * obs.cdr * em.config().framing_efficiency,
              1e-9);
}

TEST_F(SamplerFixture, DeterministicUnderSameSeed) {
  util::Rng rng1(5), rng2(5);
  const auto a = sampler.observe(link, 12, 12, 4, rng1);
  const auto b = sampler.observe(link, 12, 12, 4, rng2);
  EXPECT_DOUBLE_EQ(a.snr_db, b.snr_db);
  EXPECT_DOUBLE_EQ(a.cdr, b.cdr);
  EXPECT_EQ(a.pdp, b.pdp);
}

TEST_F(SamplerFixture, TofMatchesLosDistance) {
  util::Rng rng(2);
  const auto obs = sampler.observe(link, 12, 12, 0, rng);
  ASSERT_TRUE(obs.tof_ns.has_value());
  EXPECT_NEAR(*obs.tof_ns, 10.0 / 0.299792458, 1.5);
}

TEST_F(SamplerFixture, MisalignedBeamsLoseTof) {
  util::Rng rng(2);
  // Rx beam pointing backwards: backlobe-only reception, SNR below the
  // detection floor -> ToF reported as infinity (nullopt).
  rx.set_boresight_deg(0.0);  // boresight away from Tx
  link.refresh();
  const auto obs = sampler.observe(link, 12, 24, 0, rng);
  EXPECT_FALSE(obs.tof_ns.has_value());
}

TEST_F(SamplerFixture, BurstyInterferenceMixesCdr) {
  util::Rng rng(3);
  const auto clean = sampler.observe(link, 12, 12, 4, rng);
  ASSERT_GT(clean.cdr, 0.95);
  // Jamming interferer with 40% duty: expected CDR ~ 0.6 * clean.
  link.set_interferer(channel::Interferer{{12, 1}, 60.0, 0.4});
  util::Rng rng2(3);
  const auto jammed = sampler.observe(link, 12, 12, 4, rng2);
  EXPECT_NEAR(jammed.cdr, 0.6 * clean.cdr, 0.08);
}

TEST_F(SamplerFixture, SweepSnrAveragesDuty) {
  util::Rng rng(4);
  const double clean = link.snr_clean_db(12, 12);
  link.set_interferer(channel::Interferer{{12, 1}, 60.0, 0.5});
  const double jam = link.snr_db(12, 12);
  const double measured = sampler.measure_snr_db(link, 12, 12, rng);
  EXPECT_NEAR(measured, 0.5 * clean + 0.5 * jam, 2.0);
}

TEST(Sampler, NullErrorModelThrows) {
  EXPECT_THROW(PhySampler(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace libra::phy
