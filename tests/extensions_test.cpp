// Tests for the framework extensions: codeword-level frame transmission,
// dataset persistence, and online training.
#include <gtest/gtest.h>

#include <sstream>

#include "core/online.h"
#include "env/registry.h"
#include "phy/frame_tx.h"
#include "test_helpers.h"
#include "ml/model_io.h"
#include "trace/io.h"

namespace libra {
namespace {

using libra::testing::make_record;

// ---------- FrameTransmitter ----------

struct FrameTxFixture : ::testing::Test {
  FrameTxFixture()
      : em(&table),
        box("box", env::rectangle_walls(20, 10, 8, 8, 8, 8)),
        tx({2, 5}, 0.0, &codebook),
        rx({10, 5}, 180.0, &codebook),
        link(&box, &tx, &rx),
        frame_tx(&em) {}

  phy::McsTable table;
  phy::ErrorModel em;
  array::Codebook codebook;
  env::Environment box;
  array::PhasedArray tx;
  array::PhasedArray rx;
  channel::Link link;
  phy::FrameTransmitter frame_tx;
};

TEST_F(FrameTxFixture, HealthyLinkDeliversNearlyEverything) {
  util::Rng rng(1);
  const phy::FrameResult r = frame_tx.transmit(link, 12, 12, 2, rng);
  EXPECT_EQ(r.codewords_sent, 9200);
  EXPECT_GT(r.empirical_cdr, 0.99);
  EXPECT_TRUE(r.block_ack);
  EXPECT_EQ(r.jammed_slots, 0);
  EXPECT_EQ(r.per_slot_delivered.size(), 100u);
}

TEST_F(FrameTxFixture, DeadMcsDeliversNothing) {
  util::Rng rng(2);
  // Beam 0 points 60 degrees off: the SNR cannot support MCS 8.
  const phy::FrameResult r = frame_tx.transmit(link, 0, 0, 8, rng);
  EXPECT_LT(r.empirical_cdr, 0.01);
  EXPECT_FALSE(r.block_ack);
}

TEST_F(FrameTxFixture, EmpiricalCdrMatchesExpectedCdr) {
  util::Rng rng(3);
  // Pick an MCS near the waterfall so the CDR is fractional.
  const double snr = link.snr_db(12, 12);
  const phy::McsIndex m = table.highest_supported(snr - 0.3);
  util::RunningStats stats;
  for (int i = 0; i < 50; ++i) {
    stats.add(frame_tx.transmit(link, 12, 12, m, rng).empirical_cdr);
  }
  EXPECT_NEAR(stats.mean(), em.expected_cdr(m, snr), 0.05);
}

TEST_F(FrameTxFixture, PayloadBytesConsistent) {
  util::Rng rng(4);
  const phy::FrameResult r = frame_tx.transmit(link, 12, 12, 3, rng);
  EXPECT_NEAR(r.payload_bytes,
              r.codewords_delivered * table.entry(3).codeword_bytes *
                  em.config().framing_efficiency,
              1.0);
}

TEST_F(FrameTxFixture, BurstJamsContiguousSlots) {
  util::Rng rng(5);
  link.set_interferer(channel::Interferer{{10, 1}, 60.0, 0.4});
  const phy::FrameResult r = frame_tx.transmit(link, 12, 12, 2, rng);
  EXPECT_EQ(r.jammed_slots, 40);
  // CDR roughly (1 - duty) when bursts are destructive.
  EXPECT_NEAR(r.empirical_cdr, 0.6, 0.08);
  // Jammed slots deliver ~0, clear slots deliver ~92.
  int dead_slots = 0;
  for (int d : r.per_slot_delivered) dead_slots += d < 10;
  EXPECT_NEAR(dead_slots, 40, 5);
}

TEST_F(FrameTxFixture, NullErrorModelThrows) {
  EXPECT_THROW(phy::FrameTransmitter(nullptr), std::invalid_argument);
}

// ---------- dataset IO ----------

TEST(DatasetIo, RoundTripPreservesEverything) {
  trace::Dataset ds;
  ds.records.push_back(make_record(6, 3, 5, trace::Impairment::kBlockage));
  ds.records.back().env_name = "lobby";
  ds.records.back().position_id = "lobby#3";
  ds.records.back().interferer_eirp_dbm = 12.5;
  trace::CaseRecord na = make_record(5, 5, 5);
  na.forced_na = true;
  na.new_at_init_pair.tof_ns = std::nullopt;  // exercise the "inf" case
  ds.na_records.push_back(na);

  std::stringstream stream;
  trace::save_dataset(ds, stream);
  const trace::Dataset back = trace::load_dataset(stream);

  ASSERT_EQ(back.records.size(), 1u);
  ASSERT_EQ(back.na_records.size(), 1u);
  const auto& r = back.records[0];
  EXPECT_EQ(r.impairment, trace::Impairment::kBlockage);
  EXPECT_EQ(r.env_name, "lobby");
  EXPECT_EQ(r.position_id, "lobby#3");
  EXPECT_EQ(r.init_mcs, 6);
  EXPECT_DOUBLE_EQ(r.interferer_eirp_dbm, 12.5);
  EXPECT_EQ(r.init_best.pdp, ds.records[0].init_best.pdp);
  EXPECT_EQ(r.new_best.throughput_mbps, ds.records[0].new_best.throughput_mbps);
  ASSERT_TRUE(r.init_best.tof_ns.has_value());
  EXPECT_DOUBLE_EQ(*r.init_best.tof_ns, 20.0);
  EXPECT_FALSE(back.na_records[0].new_at_init_pair.tof_ns.has_value());
  EXPECT_TRUE(back.na_records[0].forced_na);
  // Failover traces and the angular flag survive the round trip too.
  EXPECT_EQ(r.init_failover.throughput_mbps,
            ds.records[0].init_failover.throughput_mbps);
  EXPECT_EQ(r.new_at_failover.cdr, ds.records[0].new_at_failover.cdr);
  EXPECT_EQ(r.angular_displacement, ds.records[0].angular_displacement);

  // Labels survive the round trip.
  const auto before = ds.labeled({});
  const auto after = back.labeled({});
  ASSERT_EQ(before.size(), after.size());
  EXPECT_EQ(before[0].y, after[0].y);
}

TEST(DatasetIo, RejectsGarbage) {
  std::stringstream stream("not a dataset");
  EXPECT_THROW(trace::load_dataset(stream), std::runtime_error);
}

TEST(DatasetIo, RejectsTruncatedStream) {
  trace::Dataset ds;
  ds.records.push_back(make_record(6, 3, 5));
  std::stringstream stream;
  trace::save_dataset(ds, stream);
  std::string text = stream.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(trace::load_dataset(truncated), std::runtime_error);
}

TEST(DatasetIo, FileRoundTrip) {
  trace::Dataset ds;
  ds.records.push_back(make_record(7, 2, 6));
  const std::string path = ::testing::TempDir() + "/libra_ds_test.txt";
  trace::save_dataset_file(ds, path);
  const trace::Dataset back = trace::load_dataset_file(path);
  EXPECT_EQ(back.records.size(), 1u);
  EXPECT_EQ(back.records[0].init_mcs, 7);
}

TEST(DatasetIo, MissingFileThrows) {
  EXPECT_THROW(trace::load_dataset_file("/nonexistent/nope.txt"),
               std::runtime_error);
}

TEST(DatasetIo, FeatureCsvHasHeaderAndRows) {
  trace::Dataset ds;
  ds.records.push_back(make_record(6, 3, 5));
  ds.records.push_back(make_record(6, -1, 4));
  std::stringstream out;
  trace::write_feature_csv(ds, {}, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("snr_diff_db"), std::string::npos);
  // Header + 2 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

// ---------- model IO ----------

TEST(ModelIo, TreeRoundTripPredictsIdentically) {
  ml::DataSet d(2);
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const int y = rng.bernoulli(0.5) ? 1 : 0;
    d.add(std::vector<double>{y * 3.0 + rng.gaussian(0, 1),
                              rng.gaussian(0, 1)},
          y);
  }
  ml::DecisionTree tree;
  tree.fit(d, rng);
  std::stringstream stream;
  ml::save_tree(tree, stream);
  const ml::DecisionTree back = ml::load_tree(stream);
  EXPECT_EQ(back.node_count(), tree.node_count());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.predict(d.row(i)), tree.predict(d.row(i)));
  }
  ASSERT_EQ(back.feature_importances().size(), 2u);
  EXPECT_NEAR(back.feature_importances()[0], tree.feature_importances()[0],
              1e-12);
}

TEST(ModelIo, ForestRoundTripPredictsIdentically) {
  ml::DataSet d(3);
  util::Rng rng(2);
  for (int i = 0; i < 150; ++i) {
    const int y = rng.uniform_int(0, 2);
    d.add(std::vector<double>{y * 2.0 + rng.gaussian(0, 0.5),
                              rng.gaussian(0, 1), rng.gaussian(0, 1)},
          y);
  }
  ml::RandomForestConfig cfg;
  cfg.num_trees = 12;
  ml::RandomForest forest(cfg);
  forest.fit(d, rng);
  std::stringstream stream;
  ml::save_forest(forest, stream);
  const ml::RandomForest back = ml::load_forest(stream);
  EXPECT_EQ(back.trees().size(), 12u);
  EXPECT_EQ(back.num_classes(), 3);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.predict(d.row(i)), forest.predict(d.row(i)));
  }
}

// A deployed fleet ships its forest in firmware: the serialized model must
// restore with bit-identical per-class vote fractions (not just argmax
// predictions) on rows it never saw, or confidence gating drifts.
TEST(ModelIo, ThreeClassForestRoundTripVotesBitIdentical) {
  ml::DataSet train(4), held_out(4);
  util::Rng rng(7);
  for (int i = 0; i < 240; ++i) {
    const int y = rng.uniform_int(0, 2);
    const std::vector<double> row{y * 2.0 + rng.gaussian(0, 0.6),
                                  rng.gaussian(0, 1.0),
                                  y - rng.gaussian(0, 0.4),
                                  rng.uniform(-1, 1)};
    (i % 4 == 0 ? held_out : train).add(row, y);
  }
  ml::RandomForestConfig cfg;
  cfg.num_trees = 24;
  ml::RandomForest forest(cfg);
  forest.fit(train, rng);

  std::stringstream stream;
  ml::save_forest(forest, stream);
  const ml::RandomForest back = ml::load_forest(stream);
  ASSERT_EQ(back.num_classes(), 3);
  ASSERT_EQ(back.trees().size(), forest.trees().size());
  for (std::size_t i = 0; i < held_out.size(); ++i) {
    const std::vector<double> a = forest.vote_fractions(held_out.row(i));
    const std::vector<double> b = back.vote_fractions(held_out.row(i));
    ASSERT_EQ(a, b) << "held-out row " << i;  // exact, not approximate
  }
  EXPECT_EQ(back.feature_importances(), forest.feature_importances());
}

TEST(ModelIo, RejectsGarbageAndDanglingIndices) {
  std::stringstream garbage("nope");
  EXPECT_THROW(ml::load_tree(garbage), std::runtime_error);
  // A node referencing a child beyond the node table must be rejected —
  // structural validation lives in import_model (std::invalid_argument).
  std::stringstream dangling("libra-tree-v1 1 2 0\n0 0.5 5 6 0\n\n");
  EXPECT_THROW(ml::load_tree(dangling), std::invalid_argument);
}

TEST(ModelIo, ForestFileRoundTrip) {
  ml::DataSet d(1);
  util::Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    d.add(std::vector<double>{double(i % 2) * 4 + rng.gaussian(0, 0.1)},
          i % 2);
  }
  ml::RandomForest forest;
  forest.fit(d, rng);
  const std::string path = ::testing::TempDir() + "/libra_forest_test.txt";
  ml::save_forest_file(forest, path);
  const ml::RandomForest back = ml::load_forest_file(path);
  EXPECT_EQ(back.predict(std::vector<double>{0.0}), 0);
  EXPECT_EQ(back.predict(std::vector<double>{4.0}), 1);
}

// ---------- online training ----------

trace::CaseRecord drifted_ba_case(int salt) {
  // A BA case whose feature signature differs from the seed distribution:
  // moderate SNR drop but from a *low-SNR regime* the seed set labels RA.
  trace::CaseRecord rec = make_record(7, 5, 5);
  rec.init_best.snr_db = 25.0;
  rec.new_at_init_pair.snr_db = 18.5 - 0.01 * salt;
  rec.new_at_init_pair.tof_ns = 44.0;  // looks like backward motion
  rec.init_best.tof_ns = 20.0;
  // ...but the new pair is actually much better: label = BA.
  rec.new_best = libra::testing::make_trace(7);
  return rec;
}

trace::Dataset ra_biased_seed() {
  trace::Dataset seed;
  for (int i = 0; i < 60; ++i) {
    trace::CaseRecord ra = make_record(8, 5, 5);
    ra.init_best.snr_db = 26.0;
    ra.init_best.tof_ns = 20.0;
    ra.new_at_init_pair.snr_db = 19.5 - 0.02 * (i % 10);
    ra.new_at_init_pair.tof_ns = 45.0;
    seed.records.push_back(ra);
    trace::CaseRecord ba = make_record(4, -1, 4);
    ba.init_best.snr_db = 20.0;
    ba.new_at_init_pair.snr_db = 4.0;
    ba.new_at_init_pair.tof_ns = std::nullopt;
    seed.records.push_back(ba);
  }
  return seed;
}

TEST(OnlineLibra, SeedBehavesLikeOffline) {
  core::OnlineLibra online;
  util::Rng rng(1);
  online.seed(ra_biased_seed(), {}, rng);
  const trace::FeatureVector f =
      trace::extract_features(drifted_ba_case(0));
  // Without deployment data, the drifted case is misread as RA.
  EXPECT_EQ(online.classify(f, rng), trace::Action::kRA);
}

TEST(OnlineLibra, AdaptsToDeploymentDistribution) {
  core::OnlineLibraConfig cfg;
  cfg.retrain_every = 10;
  cfg.local_weight = 4;
  core::OnlineLibra online(cfg);
  util::Rng rng(2);
  online.seed(ra_biased_seed(), {}, rng);
  for (int i = 0; i < 60; ++i) {
    online.observe(drifted_ba_case(i), {}, rng);
  }
  EXPECT_GE(online.retrains(), 5);
  const trace::FeatureVector f =
      trace::extract_features(drifted_ba_case(999));
  EXPECT_EQ(online.classify(f, rng), trace::Action::kBA);
}

TEST(OnlineLibra, RejectsDegenerateConfig) {
  core::OnlineLibraConfig cfg;
  cfg.window_size = 0;
  EXPECT_THROW(core::OnlineLibra{cfg}, std::invalid_argument);
  cfg = {};
  cfg.retrain_every = 0;
  EXPECT_THROW(core::OnlineLibra{cfg}, std::invalid_argument);
  cfg = {};
  cfg.local_weight = -1;
  EXPECT_THROW(core::OnlineLibra{cfg}, std::invalid_argument);
  cfg = {};  // defaults are valid
  EXPECT_NO_THROW(core::OnlineLibra{cfg});
}

TEST(OnlineLibra, WindowIsBounded) {
  core::OnlineLibraConfig cfg;
  cfg.window_size = 10;
  cfg.retrain_every = 1000;  // never retrain during this test
  core::OnlineLibra online(cfg);
  util::Rng rng(3);
  online.seed(ra_biased_seed(), {}, rng);
  for (int i = 0; i < 50; ++i) online.observe(drifted_ba_case(i), {}, rng);
  EXPECT_EQ(online.observed_events(), 50);
  EXPECT_EQ(online.retrains(), 0);
}

}  // namespace
}  // namespace libra
