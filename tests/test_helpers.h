// Shared fixtures for the trace/core/sim tests: hand-built PairTraces and
// CaseRecords with known ground truth, so labeling and simulation can be
// checked against closed-form expectations.
#pragma once

#include <vector>

#include "trace/collector.h"

namespace libra::testing {

inline constexpr int kNumMcs = 9;

// A PairTrace where MCSs [0, highest_working] deliver their full rate and
// everything above delivers nothing.
inline trace::PairTrace make_trace(int highest_working,
                                   double rate_scale = 1.0) {
  const double rates[kNumMcs] = {300,  385,  770,  1155, 1540,
                                 1925, 2310, 3080, 4750};
  trace::PairTrace t;
  t.tx_beam = 0;
  t.rx_beam = 0;
  t.snr_db = 10.0 + 2.0 * highest_working;
  t.noise_dbm = -74.0;
  t.tof_ns = 20.0;
  t.pdp.assign(64, 1e-12);
  t.pdp[20] = 1e-6;
  t.csi.assign(32, 1.0);
  t.throughput_mbps.resize(kNumMcs);
  t.cdr.resize(kNumMcs);
  for (int m = 0; m < kNumMcs; ++m) {
    const bool works = m <= highest_working;
    t.cdr[(std::size_t)m] = works ? 0.95 : 0.0;
    t.throughput_mbps[(std::size_t)m] =
        works ? rates[m] * 0.92 * rate_scale : 0.0;
  }
  return t;
}

// A case where the initial state supports MCS `init`, the impaired state
// supports `after_ra` on the initial pair, `after_ba` on the new best pair,
// and `after_failover` on the MOCA-style failover pair (defaults to the
// new-best behavior). after_* = -1 means nothing works on that pair.
inline trace::CaseRecord make_record(int init, int after_ra, int after_ba,
                                     trace::Impairment imp =
                                         trace::Impairment::kDisplacement,
                                     int after_failover = -2) {
  trace::CaseRecord rec;
  rec.impairment = imp;
  rec.env_name = "synthetic";
  rec.position_id = "synthetic#0";
  rec.init_best = make_trace(init);
  rec.init_mcs = init;
  rec.new_at_init_pair = make_trace(after_ra);
  rec.new_best = make_trace(after_ba);
  rec.init_failover = make_trace(init > 0 ? init - 1 : 0);
  rec.new_at_failover =
      make_trace(after_failover == -2 ? after_ba : after_failover);
  return rec;
}

}  // namespace libra::testing
