#include <gtest/gtest.h>

#include "phy/error_model.h"
#include "test_helpers.h"
#include "trace/dataset.h"
#include "trace/features.h"
#include "trace/ground_truth.h"
#include "trace/scenario.h"

namespace libra::trace {
namespace {

using libra::testing::make_record;
using libra::testing::make_trace;

// ---------- scenarios ----------

TEST(Scenario, TrainingSetCoversAllImpairments) {
  const ScenarioSet set = training_scenarios();
  EXPECT_EQ(set.environments.size(), 6u);
  int disp = 0, blk = 0, ifr = 0;
  for (const Case& c : set.cases) {
    switch (c.impairment) {
      case Impairment::kDisplacement: ++disp; break;
      case Impairment::kBlockage: ++blk; break;
      case Impairment::kInterference: ++ifr; break;
    }
    EXPECT_GE(c.env_index, 0);
    EXPECT_LT(c.env_index, 6);
  }
  // Same order of magnitude and same ranking as Table 1.
  EXPECT_GT(disp, blk);
  EXPECT_GT(ifr, blk);
  EXPECT_GT(disp, 150);
  EXPECT_GE(blk, 60);
  EXPECT_GE(ifr, 90);
}

TEST(Scenario, TestingSetUsesTwoBuildings) {
  const ScenarioSet set = testing_scenarios();
  EXPECT_EQ(set.environments.size(), 2u);
  for (const Case& c : set.cases) {
    EXPECT_TRUE(c.env_name == "building1_corridor" ||
                c.env_name == "building2_open_area");
  }
}

TEST(Scenario, RotationCasesKeepPosition) {
  const ScenarioSet set = training_scenarios();
  int rotations = 0;
  for (const Case& c : set.cases) {
    if (c.impairment != Impairment::kDisplacement) continue;
    const bool same_pos =
        geom::distance(c.initial.rx.position, c.next.rx.position) < 1e-9;
    const bool rotated = std::abs(geom::wrap_angle_deg(
                             c.initial.rx.boresight_deg -
                             c.next.rx.boresight_deg)) > 1.0;
    if (same_pos && rotated) ++rotations;
  }
  // 12 rotation states per rotation spot, several spots (Sec. 4.2).
  EXPECT_GE(rotations, 100);
}

TEST(Scenario, RotationAnglesAre15DegreeSteps) {
  const ScenarioSet set = training_scenarios();
  for (const Case& c : set.cases) {
    if (c.impairment != Impairment::kDisplacement) continue;
    // Only pure rotations (same position); moves also change orientation
    // because the Rx keeps facing the Tx (or its original direction).
    if (geom::distance(c.initial.rx.position, c.next.rx.position) > 1e-9) {
      continue;
    }
    const double delta = std::abs(geom::wrap_angle_deg(
        c.next.rx.boresight_deg - c.initial.rx.boresight_deg));
    if (delta < 1.0) continue;
    const double steps = delta / 15.0;
    EXPECT_NEAR(steps, std::round(steps), 1e-9);
    EXPECT_LE(delta, 90.0 + 1e-9);
  }
}

TEST(Scenario, BlockageCasesHaveBlockersOnlyInNextState) {
  const ScenarioSet set = training_scenarios();
  for (const Case& c : set.cases) {
    if (c.impairment != Impairment::kBlockage) continue;
    EXPECT_TRUE(c.initial.blockers.empty());
    EXPECT_FALSE(c.next.blockers.empty());
    // Blocker sits between Tx and Rx.
    const geom::Segment los{c.tx.position, c.next.rx.position};
    EXPECT_LT(geom::point_segment_distance(c.next.blockers[0].position, los),
              0.5);
  }
}

TEST(Scenario, InterferenceCasesSpanThreeLevels) {
  const ScenarioSet set = training_scenarios();
  int low = 0, med = 0, high = 0;
  for (const Case& c : set.cases) {
    if (c.impairment != Impairment::kInterference) continue;
    ASSERT_TRUE(c.next.interference_level.has_value());
    ASSERT_TRUE(c.next.interferer_position.has_value());
    switch (*c.next.interference_level) {
      case InterferenceLevel::kLow: ++low; break;
      case InterferenceLevel::kMedium: ++med; break;
      case InterferenceLevel::kHigh: ++high; break;
    }
  }
  EXPECT_EQ(low, med);
  EXPECT_EQ(med, high);
}

TEST(Scenario, TargetDropFractions) {
  EXPECT_DOUBLE_EQ(target_drop_fraction(InterferenceLevel::kLow), 0.2);
  EXPECT_DOUBLE_EQ(target_drop_fraction(InterferenceLevel::kMedium), 0.5);
  EXPECT_DOUBLE_EQ(target_drop_fraction(InterferenceLevel::kHigh), 0.8);
}

TEST(Scenario, ToStringNames) {
  EXPECT_EQ(to_string(Impairment::kDisplacement), "displacement");
  EXPECT_EQ(to_string(Impairment::kBlockage), "blockage");
  EXPECT_EQ(to_string(Impairment::kInterference), "interference");
}

// ---------- PairTrace ----------

TEST(PairTrace, BestMcsIsHighestThroughputWorking) {
  const PairTrace t = make_trace(5);
  EXPECT_EQ(t.best_mcs(150.0, 0.10), 5);
}

TEST(PairTrace, BestMcsFallsBackWhenNothingWorks) {
  PairTrace t = make_trace(-1);
  t.throughput_mbps[2] = 10.0;  // best raw throughput but not "working"
  t.cdr[2] = 0.05;
  EXPECT_EQ(t.best_mcs(150.0, 0.10), 2);
}

// ---------- ground truth ----------

TEST(GroundTruth, RaWinsWhenInitialPairStillGood) {
  // After impairment: initial pair supports MCS 4, new best pair also 4.
  const CaseRecord rec = make_record(6, 4, 4);
  const GroundTruth gt = label_case(rec, {});
  EXPECT_EQ(gt.label, Action::kRA);
  EXPECT_DOUBLE_EQ(gt.th_ra_mbps, gt.th_ba_mbps);
}

TEST(GroundTruth, BaWinsWhenNewPairMuchBetter) {
  const CaseRecord rec = make_record(6, 0, 5);
  const GroundTruth gt = label_case(rec, {});
  EXPECT_EQ(gt.label, Action::kBA);
  EXPECT_GT(gt.th_ba_mbps, gt.th_ra_mbps);
}

TEST(GroundTruth, ThBaLimitedToInitialMcs) {
  // The new pair supports MCS 8 but RA-after-BA starts at the initial MCS 4
  // and only explores downward (Sec. 5.2 RA/BA subtleties).
  const CaseRecord rec = make_record(4, 2, 8);
  const GroundTruth gt = label_case(rec, {});
  const PairTrace ref = make_trace(8);
  EXPECT_DOUBLE_EQ(gt.th_ba_mbps, ref.throughput_mbps[4]);
}

TEST(GroundTruth, RaDelayCountsProbes) {
  GroundTruthConfig cfg;
  cfg.fat_ms = 10.0;
  // Initial MCS 6; first working on the initial pair is 4: probes 6,5,4.
  const CaseRecord rec = make_record(6, 4, 6);
  const GroundTruth gt = label_case(rec, cfg);
  EXPECT_DOUBLE_EQ(gt.delay_ra_ms, 3 * 10.0);
}

TEST(GroundTruth, BaDelayIncludesOverheadPlusRa) {
  GroundTruthConfig cfg;
  cfg.fat_ms = 10.0;
  cfg.ba_overhead_ms = 150.0;
  // After BA: new pair works at the initial MCS immediately (1 probe).
  const CaseRecord rec = make_record(6, -1, 6);
  const GroundTruth gt = label_case(rec, cfg);
  EXPECT_DOUBLE_EQ(gt.delay_ba_ms, 150.0 + 10.0);
}

TEST(GroundTruth, RaFailurePathPaysFullDisaster) {
  GroundTruthConfig cfg;
  cfg.fat_ms = 10.0;
  cfg.ba_overhead_ms = 5.0;
  // Nothing works on the initial pair: RA probes 7 MCSs (6..0), then BA,
  // then finds MCS 6 immediately on the new pair.
  const CaseRecord rec = make_record(6, -1, 6);
  const GroundTruth gt = label_case(rec, cfg);
  EXPECT_DOUBLE_EQ(gt.delay_ra_ms, 7 * 10.0 + 5.0 + 10.0);
  EXPECT_EQ(gt.label, Action::kBA);
}

TEST(GroundTruth, DelayClampedAtDmax) {
  GroundTruthConfig cfg;
  cfg.fat_ms = 10.0;
  cfg.ba_overhead_ms = 5.0;
  const CaseRecord rec = make_record(8, -1, -1);  // dead link everywhere
  const GroundTruth gt = label_case(rec, cfg);
  const double dmax = mac::worst_case_delay_ms(9, 10.0, 5.0);
  EXPECT_LE(gt.delay_ra_ms, dmax);
  EXPECT_LE(gt.delay_ba_ms, dmax);
}

TEST(GroundTruth, AlphaZeroPicksFasterMechanism) {
  GroundTruthConfig cfg;
  cfg.alpha = 0.0;  // delay only
  cfg.fat_ms = 10.0;
  cfg.ba_overhead_ms = 250.0;
  // RA restores in 1 probe (MCS 6 still works but BA pair is richer).
  const CaseRecord rec = make_record(6, 6, 6);
  const GroundTruth gt = label_case(rec, cfg);
  EXPECT_EQ(gt.label, Action::kRA);
  EXPECT_LT(gt.delay_ra_ms, gt.delay_ba_ms);
}

TEST(GroundTruth, TieGoesToRa) {
  const CaseRecord rec = make_record(5, 5, 5);
  const GroundTruth gt = label_case(rec, {});
  EXPECT_EQ(gt.label, Action::kRA);
}

TEST(GroundTruth, ThreeClassNaWhenStillWorking) {
  // The initial MCS still works at full throughput at the new state.
  const CaseRecord rec = make_record(5, 5, 5);
  const GroundTruth gt = label_case(rec, {});
  EXPECT_EQ(gt.label3, Action::kNA);
}

TEST(GroundTruth, ThreeClassFollows2ClassWhenDegraded) {
  const CaseRecord rec = make_record(6, 0, 5);
  const GroundTruth gt = label_case(rec, {});
  EXPECT_EQ(gt.label3, Action::kBA);
}

TEST(GroundTruth, ForcedNaOverrides) {
  CaseRecord rec = make_record(6, 0, 5);
  rec.forced_na = true;
  const GroundTruth gt = label_case(rec, {});
  EXPECT_EQ(gt.label3, Action::kNA);
}

TEST(GroundTruth, IsWorkingRule) {
  GroundTruthConfig cfg;
  EXPECT_TRUE(is_working(0.5, 500.0, cfg));
  EXPECT_FALSE(is_working(0.05, 500.0, cfg));  // CDR too low
  EXPECT_FALSE(is_working(0.5, 100.0, cfg));   // throughput too low
}

TEST(GroundTruth, ActionToString) {
  EXPECT_EQ(to_string(Action::kRA), "RA");
  EXPECT_EQ(to_string(Action::kBA), "BA");
  EXPECT_EQ(to_string(Action::kNA), "NA");
}

// ---------- features ----------

TEST(Features, SnrDropSign) {
  CaseRecord rec = make_record(6, 3, 5);
  rec.init_best.snr_db = 20.0;
  rec.new_at_init_pair.snr_db = 12.0;
  const FeatureVector f = extract_features(rec);
  EXPECT_NEAR(f.snr_diff_db(), 8.0, 1e-9);
}

TEST(Features, TofDiffNegativeForBackwardMotion) {
  CaseRecord rec = make_record(6, 3, 5);
  rec.init_best.tof_ns = 20.0;
  rec.new_at_init_pair.tof_ns = 35.0;  // moved away: longer flight
  const FeatureVector f = extract_features(rec);
  EXPECT_NEAR(f.tof_diff_ns(), -15.0, 1e-9);
}

TEST(Features, TofInfinitySentinel) {
  CaseRecord rec = make_record(6, 3, 5);
  rec.new_at_init_pair.tof_ns = std::nullopt;
  const FeatureVector f = extract_features(rec);
  EXPECT_DOUBLE_EQ(f.tof_diff_ns(), kTofInfinity);
}

TEST(Features, NoiseRiseUnderInterference) {
  CaseRecord rec = make_record(6, 3, 5, Impairment::kInterference);
  rec.init_best.noise_dbm = -74.0;
  rec.new_at_init_pair.noise_dbm = -65.0;
  const FeatureVector f = extract_features(rec);
  EXPECT_NEAR(f.noise_diff_db(), 9.0, 1e-9);
}

TEST(Features, CdrAtInitialMcs) {
  CaseRecord rec = make_record(6, 3, 5);
  const FeatureVector f = extract_features(rec);
  EXPECT_DOUBLE_EQ(f.cdr(), rec.new_at_init_pair.cdr[6]);
  EXPECT_DOUBLE_EQ(f.initial_mcs(), 6.0);
}

TEST(Features, AlignedPdpSimilarityIsShiftInvariant) {
  // The same two-tap profile shifted by 7 taps: perfectly similar after
  // alignment (the receiver re-synchronizes).
  std::vector<double> a(64, 1e-12), b(64, 1e-12);
  a[10] = 1e-6;
  a[14] = 3e-7;
  b[17] = 1e-6;
  b[21] = 3e-7;
  EXPECT_NEAR(aligned_pdp_similarity(a, b), 1.0, 1e-6);
}

TEST(Features, AlignedPdpSimilarityDropsForDifferentStructure) {
  std::vector<double> a(64, 1e-12), b(64, 1e-12);
  a[10] = 1e-6;
  a[14] = 8e-7;
  b[10] = 1e-6;
  b[30] = 8e-7;  // second tap moved far away
  EXPECT_LT(aligned_pdp_similarity(a, b), 0.9);
}

TEST(Features, AlignedPdpSimilarityEdgeCases) {
  EXPECT_EQ(aligned_pdp_similarity({}, {1.0}), 0.0);
  std::vector<double> tail_peak(4, 0.0);
  tail_peak[3] = 1.0;
  EXPECT_EQ(aligned_pdp_similarity(tail_peak, tail_peak), 0.0);  // len < 2
}

TEST(Features, NamesMatchTable3Order) {
  EXPECT_EQ(FeatureVector::kNames[0], "SNR");
  EXPECT_EQ(FeatureVector::kNames[6], "InitialMCS");
  EXPECT_EQ(FeatureVector::kDim, 7);
}

TEST(Features, OutOfRangeInitMcsThrows) {
  CaseRecord rec = make_record(6, 3, 5);
  rec.init_mcs = static_cast<int>(rec.new_at_init_pair.cdr.size());
  EXPECT_THROW(extract_features(rec), std::invalid_argument);
  rec.init_mcs = -1;
  EXPECT_THROW(extract_features(rec), std::invalid_argument);
}

TEST(Features, MismatchedCdrThroughputThrows) {
  CaseRecord rec = make_record(6, 3, 5);
  rec.new_at_init_pair.throughput_mbps.pop_back();
  EXPECT_THROW(extract_features(rec), std::invalid_argument);
}

// ---------- dataset ----------

TEST(Dataset, LabeledMatchesRecords) {
  Dataset ds;
  ds.records.push_back(make_record(6, 4, 4));  // RA
  ds.records.push_back(make_record(6, 0, 5));  // BA
  const auto entries = ds.labeled({});
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].y, Action::kRA);
  EXPECT_EQ(entries[1].y, Action::kBA);
}

TEST(Dataset, Labeled3IncludesNaRecords) {
  Dataset ds;
  ds.records.push_back(make_record(6, 0, 5));
  CaseRecord na = make_record(5, 5, 5);
  na.forced_na = true;
  ds.na_records.push_back(na);
  const auto entries = ds.labeled3({});
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].y, Action::kNA);
}

TEST(Dataset, SummarizeCountsPerImpairment) {
  Dataset ds;
  ds.records.push_back(make_record(6, 4, 4, Impairment::kDisplacement));
  ds.records.push_back(make_record(6, 0, 5, Impairment::kDisplacement));
  ds.records.push_back(make_record(6, 0, 5, Impairment::kBlockage));
  ds.records.push_back(make_record(6, 4, 4, Impairment::kInterference));
  const DatasetSummary s = summarize(ds, {});
  EXPECT_EQ(s.displacement.total, 2);
  EXPECT_EQ(s.displacement.ba, 1);
  EXPECT_EQ(s.displacement.ra, 1);
  EXPECT_EQ(s.blockage.ba, 1);
  EXPECT_EQ(s.interference.ra, 1);
  EXPECT_EQ(s.overall.total, 4);
  // All synthetic records share one position id.
  EXPECT_EQ(s.overall.positions, 1);
}

// ---------- collection (small end-to-end) ----------

TEST(Collection, SingleCaseProducesConsistentRecord) {
  phy::McsTable table;
  phy::ErrorModel em(&table);
  ScenarioSet set = training_scenarios();
  set.cases.resize(5);
  const Dataset ds = collect_dataset(set, em, {});
  ASSERT_EQ(ds.records.size(), 5u);
  for (const CaseRecord& rec : ds.records) {
    EXPECT_EQ(rec.init_best.throughput_mbps.size(), 9u);
    EXPECT_EQ(rec.new_best.throughput_mbps.size(), 9u);
    EXPECT_GE(rec.init_mcs, 0);
    EXPECT_LE(rec.init_mcs, 8);
    // The initial state is a healthy link: its best MCS must be working.
    const auto i = (std::size_t)rec.init_mcs;
    EXPECT_GT(rec.init_best.cdr[i], 0.10);
    EXPECT_GT(rec.init_best.throughput_mbps[i], 150.0);
    // The new best pair is at least as good as the stale pair (it was
    // selected by an exhaustive sweep at the new state).
    EXPECT_GE(rec.new_best.snr_db + 1.5, rec.new_at_init_pair.snr_db);
  }
}

TEST(Collection, DeterministicUnderSeed) {
  phy::McsTable table;
  phy::ErrorModel em(&table);
  ScenarioSet set = training_scenarios();
  set.cases.resize(3);
  CollectOptions opt;
  opt.with_na_augmentation = false;
  const Dataset a = collect_dataset(set, em, opt);
  const Dataset b = collect_dataset(set, em, opt);
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].init_best.snr_db,
                     b.records[i].init_best.snr_db);
    EXPECT_EQ(a.records[i].init_mcs, b.records[i].init_mcs);
  }
}

TEST(Collection, InterferenceCalibrationHitsTargetDrop) {
  phy::McsTable table;
  phy::ErrorModel em(&table);
  // Find an interference case and verify the calibrated EIRP produces the
  // intended *burst* severity (bursts suppress nearly all throughput).
  ScenarioSet set = training_scenarios();
  std::vector<Case> interference_cases;
  for (const Case& c : set.cases) {
    if (c.impairment == Impairment::kInterference) {
      interference_cases.push_back(c);
      if (interference_cases.size() == 3) break;
    }
  }
  set.cases = interference_cases;
  CollectOptions opt;
  opt.with_na_augmentation = false;
  const Dataset ds = collect_dataset(set, em, opt);
  for (const CaseRecord& rec : ds.records) {
    const auto i = (std::size_t)rec.init_mcs;
    const double before = rec.init_best.throughput_mbps[i];
    const double after = rec.new_at_init_pair.throughput_mbps[i];
    // Low level = 20% duty: average drop ~20%.
    EXPECT_LT(after, before);
    EXPECT_GT(after, 0.0);
  }
}

TEST(Collection, MarksAngularDisplacementAndFailover) {
  phy::McsTable table;
  phy::ErrorModel em(&table);
  ScenarioSet set = training_scenarios();
  // Keep a rotation case (same position) and a move case.
  std::vector<Case> picked;
  for (const Case& c : set.cases) {
    if (c.impairment != Impairment::kDisplacement) continue;
    const bool rotation =
        geom::distance(c.initial.rx.position, c.next.rx.position) < 1e-9;
    if (rotation && picked.empty()) picked.push_back(c);
    if (!rotation && picked.size() == 1) {
      picked.push_back(c);
      break;
    }
  }
  ASSERT_EQ(picked.size(), 2u);
  set.cases = picked;
  CollectOptions opt;
  opt.with_na_augmentation = false;
  const Dataset ds = collect_dataset(set, em, opt);
  EXPECT_TRUE(ds.records[0].angular_displacement);
  EXPECT_FALSE(ds.records[1].angular_displacement);
  for (const CaseRecord& rec : ds.records) {
    // The failover pair is angularly diverse from the primary and weaker
    // (it was the constrained runner-up at the initial state).
    EXPECT_GE(std::abs(rec.init_failover.tx_beam - rec.init_best.tx_beam), 3);
    EXPECT_LE(rec.init_failover.snr_db, rec.init_best.snr_db + 1.0);
    EXPECT_EQ(rec.new_at_failover.tx_beam, rec.init_failover.tx_beam);
  }
}

TEST(Collection, NaRecordsAreStable) {
  phy::McsTable table;
  phy::ErrorModel em(&table);
  ScenarioSet set = training_scenarios();
  set.cases.resize(4);
  CollectOptions opt;
  opt.with_na_augmentation = true;
  const Dataset ds = collect_dataset(set, em, opt);
  ASSERT_EQ(ds.na_records.size(), 4u);
  for (const CaseRecord& rec : ds.na_records) {
    EXPECT_TRUE(rec.forced_na);
    // Two windows of the same state: tiny SNR difference.
    EXPECT_LT(std::abs(rec.init_best.snr_db - rec.new_at_init_pair.snr_db),
              1.0);
  }
}

}  // namespace
}  // namespace libra::trace
