// Fault injection & the degradation ladder (faults/faults.h, the
// observe/decide/apply seams of core::LinkController, sim/golden.h):
//
//   - property fuzz: randomized FaultPlans over mixed fleets never crash,
//     never leave the MCS/action/goodput domain, and replay bit-for-bit
//     from (fleet_seed, fault_seed);
//   - differential degradation: a LiBRA fleet under a 100% classifier
//     outage is frame-for-frame the RA-first heuristic fleet;
//   - empty/zero plans are bit-identical to an unfaulted run, and faulted
//     runs are invariant to the forest thread count;
//   - a golden digest pins the canonical faulted run against regressions;
//   - non-finite inputs are rejected (or demoted, per policy) at every
//     layer: extract_features, classify, classify_batch.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <memory>
#include <vector>

#include "core/controller.h"
#include "env/registry.h"
#include "faults/faults.h"
#include "util/simd.h"
#include "sim/fleet.h"
#include "sim/golden.h"
#include "test_helpers.h"

namespace libra {
namespace {

using libra::testing::make_record;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// A trained 3-class classifier over clearly separated synthetic cases
// (same corpus as fleet_test), parameterized on forest thread count so
// thread invariance of faulted runs can be checked.
core::LibraClassifier make_classifier(int num_threads) {
  trace::Dataset ds;
  for (int i = 0; i < 40; ++i) {
    trace::CaseRecord ba = make_record(4, -1, 4);
    ba.init_best.snr_db = 20.0;
    ba.new_at_init_pair.snr_db = 5.0 - 0.1 * (i % 5);
    ba.new_at_init_pair.tof_ns = std::nullopt;
    ds.records.push_back(ba);
    trace::CaseRecord ra = make_record(8, 5, 5);
    ra.init_best.snr_db = 26.0;
    ra.init_best.tof_ns = 20.0;
    ra.new_at_init_pair.snr_db = 19.0 - 0.1 * (i % 7);
    ra.new_at_init_pair.tof_ns = 45.0;
    ds.records.push_back(ra);
    trace::CaseRecord na = make_record(6, 6, 6);
    na.forced_na = true;
    na.init_best.snr_db = 22.0;
    na.new_at_init_pair.snr_db = 22.0 - 0.05 * (i % 3);
    ds.na_records.push_back(na);
  }
  core::LibraClassifierConfig cfg;
  cfg.forest.num_threads = num_threads;
  core::LibraClassifier c(cfg);
  util::Rng rng(1);
  c.train(ds, {}, rng);
  return c;
}

const core::LibraClassifier& shared_classifier() {
  static const core::LibraClassifier clf = make_classifier(4);
  return clf;
}

const phy::ErrorModel& shared_error_model() {
  static const phy::McsTable table;
  static const phy::ErrorModel em(&table);
  return em;
}

// One station's whole world, self-contained so every run builds an
// identical fresh copy.
struct Station {
  env::Environment env;
  array::PhasedArray ap;
  array::PhasedArray client;
  channel::Link link;
  std::unique_ptr<core::LinkController> controller;
  sim::SessionScript script;

  Station(const array::Codebook* codebook, geom::Vec2 client_pos,
          const core::LibraClassifier* clf)
      : env(env::make_lobby()),
        ap({2, 6}, 0.0, codebook),
        client(client_pos, 180.0, codebook),
        link(&env, &ap, &client) {
    if (clf != nullptr) {
      controller = std::make_unique<core::LibraController>(
          &link, &shared_error_model(), clf);
    } else {
      controller = std::make_unique<core::RaFirstController>(
          &link, &shared_error_model(), core::ControllerConfig{});
    }
  }
};

// A 3-station mixed fleet (2 LiBRA + 1 RA-first) with per-station
// impairments. `clf` may be nullptr to make every station RA-first.
std::vector<std::unique_ptr<Station>> build_stations(
    const array::Codebook* codebook, const core::LibraClassifier* clf,
    bool all_heuristic = false) {
  const core::LibraClassifier* c0 = all_heuristic ? nullptr : clf;
  std::vector<std::unique_ptr<Station>> stations;
  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{10, 6}, c0));
  stations[0]->script.duration_ms = 1200.0;
  stations[0]->script.rx_trajectory =
      sim::Trajectory::stationary({10, 6}, 180.0);
  stations[0]->script.blockage.push_back({400.0, 900.0, {{6, 6}, 0.3, 35.0}});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{12, 7}, c0));
  stations[1]->script.duration_ms = 1200.0;
  stations[1]->script.rx_trajectory =
      sim::Trajectory::walk({12, 7}, {17, 8}, 1200.0, geom::Vec2{2, 6});

  stations.push_back(
      std::make_unique<Station>(codebook, geom::Vec2{9, 5}, nullptr));
  stations[2]->script.duration_ms = 1200.0;
  stations[2]->script.rx_trajectory =
      sim::Trajectory::stationary({9, 5}, 180.0);
  stations[2]->script.interference.push_back(
      {300.0, 900.0, {{10, 1}, 50.0, 0.5}});
  return stations;
}

sim::FleetResult run_mixed_fleet(const core::LibraClassifier* clf,
                                 std::uint64_t fleet_seed,
                                 const faults::FaultPlan& plan,
                                 bool all_heuristic = false) {
  const array::Codebook codebook;
  auto stations = build_stations(&codebook, clf, all_heuristic);
  std::vector<sim::FleetLink> members;
  for (auto& s : stations) {
    members.push_back({&s->env, &s->link, s->controller.get(), s->script});
  }
  sim::FleetConfig cfg;
  cfg.seed = fleet_seed;
  cfg.keep_frame_logs = true;
  cfg.faults = plan;
  return sim::run_fleet(members, cfg);
}

void expect_frame_logs_identical(const sim::FleetResult& a,
                                 const sim::FleetResult& b) {
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    const sim::SessionResult& x = a.links[i];
    const sim::SessionResult& y = b.links[i];
    EXPECT_EQ(x.frames, y.frames) << "link " << i;
    EXPECT_EQ(x.bytes_mb, y.bytes_mb) << "link " << i;
    EXPECT_EQ(x.avg_goodput_mbps, y.avg_goodput_mbps) << "link " << i;
    EXPECT_EQ(x.adaptations_ba, y.adaptations_ba) << "link " << i;
    EXPECT_EQ(x.adaptations_ra, y.adaptations_ra) << "link " << i;
    EXPECT_EQ(x.outages, y.outages) << "link " << i;
    EXPECT_EQ(x.total_outage_ms, y.total_outage_ms) << "link " << i;
    ASSERT_EQ(x.frame_log.size(), y.frame_log.size()) << "link " << i;
    for (std::size_t f = 0; f < x.frame_log.size(); ++f) {
      const core::FrameReport& p = x.frame_log[f];
      const core::FrameReport& q = y.frame_log[f];
      ASSERT_EQ(p.t_ms, q.t_ms) << "link " << i << " frame " << f;
      ASSERT_EQ(p.mcs, q.mcs) << "link " << i << " frame " << f;
      ASSERT_EQ(p.goodput_mbps, q.goodput_mbps)
          << "link " << i << " frame " << f;
      ASSERT_EQ(p.ack, q.ack) << "link " << i << " frame " << f;
      ASSERT_EQ(p.action, q.action) << "link " << i << " frame " << f;
    }
  }
}

// ---------- property fuzz ----------

// A random but always-valid FaultPlan: 1-6 windows of random kinds,
// probabilities, spans, and kind-appropriate magnitudes.
faults::FaultPlan random_plan(util::Rng& meta, std::uint64_t fault_seed) {
  faults::FaultPlan plan;
  plan.seed = fault_seed;
  const int n = meta.uniform_int(1, 6);
  for (int w = 0; w < n; ++w) {
    const auto kind = static_cast<faults::FaultKind>(
        meta.uniform_int(0, faults::kNumFaultKinds - 1));
    const double p = meta.bernoulli(0.25) ? 1.0 : meta.uniform(0.0, 1.0);
    const double start = meta.uniform(0.0, 1200.0);
    const double end = meta.bernoulli(0.2)
                           ? faults::kForever
                           : start + meta.uniform(50.0, 800.0);
    double magnitude = 0.0;
    if (kind == faults::FaultKind::kClockSkew) {
      magnitude = meta.uniform(-0.5, 0.5);
    } else if (kind == faults::FaultKind::kTruncateFeatures) {
      magnitude = meta.uniform(0.0, 1.0);
    }
    plan.add(kind, p, start, end, magnitude);
  }
  plan.validate();
  return plan;
}

void expect_result_in_domain(const sim::FleetResult& result) {
  const int top = shared_error_model().table().max_mcs();
  for (std::size_t i = 0; i < result.links.size(); ++i) {
    const sim::SessionResult& link = result.links[i];
    EXPECT_GT(link.frames, 0) << "link " << i;
    EXPECT_TRUE(std::isfinite(link.bytes_mb)) << "link " << i;
    EXPECT_TRUE(std::isfinite(link.avg_goodput_mbps)) << "link " << i;
    EXPECT_GE(link.bytes_mb, 0.0) << "link " << i;
    for (std::size_t f = 0; f < link.frame_log.size(); ++f) {
      const core::FrameReport& r = link.frame_log[f];
      EXPECT_GE(r.mcs, 0) << "link " << i << " frame " << f;
      EXPECT_LE(r.mcs, top) << "link " << i << " frame " << f;
      EXPECT_TRUE(r.action == trace::Action::kBA ||
                  r.action == trace::Action::kRA ||
                  r.action == trace::Action::kNA)
          << "link " << i << " frame " << f;
      EXPECT_TRUE(std::isfinite(r.goodput_mbps))
          << "link " << i << " frame " << f;
      EXPECT_GE(r.goodput_mbps, 0.0) << "link " << i << " frame " << f;
    }
  }
}

// Seeded random FaultPlans over the mixed fleet: whatever the schedule
// throws at the pipeline, the run must stay in domain and replay
// bit-for-bit from (fleet_seed, fault_seed). Failing seed pairs are
// appended to faults_fuzz_failures.txt (uploaded as a CI artifact).
TEST(FaultsFuzz, RandomPlansStayInDomainAndReplay) {
  constexpr int kIterations = 8;
  util::Rng meta(20260805);
  for (int it = 0; it < kIterations; ++it) {
    const std::uint64_t fleet_seed = 100 + static_cast<std::uint64_t>(it);
    const std::uint64_t fault_seed =
        static_cast<std::uint64_t>(meta.uniform_int(1, 1 << 20));
    const faults::FaultPlan plan = random_plan(meta, fault_seed);
    SCOPED_TRACE("iteration " + std::to_string(it) + " fleet_seed " +
                 std::to_string(fleet_seed) + " fault_seed " +
                 std::to_string(fault_seed));

    const sim::FleetResult first =
        run_mixed_fleet(&shared_classifier(), fleet_seed, plan);
    expect_result_in_domain(first);
    const sim::FleetResult replay =
        run_mixed_fleet(&shared_classifier(), fleet_seed, plan);
    expect_frame_logs_identical(first, replay);

    if (::testing::Test::HasFailure()) {
      std::ofstream out("faults_fuzz_failures.txt", std::ios::app);
      out << "fleet_seed=" << fleet_seed << " fault_seed=" << fault_seed
          << " windows=" << plan.windows.size() << "\n";
      return;  // later iterations would only pile on noise
    }
  }
}

// ---------- differential degradation ----------

// Under a 100% classifier outage the LiBRA fleet must reduce exactly to
// the missing-ACK heuristic: frame-for-frame bit-identical to a fleet
// running RaFirstController from the start (the outage rung substitutes
// the same rule and neither path consumes any extra randomness).
TEST(FaultsDegradation, FullOutageReducesToRaFirstHeuristic) {
  faults::FaultPlan outage;
  outage.seed = 5;
  outage.add(faults::FaultKind::kClassifierOutage, 1.0);

  const sim::FleetResult degraded =
      run_mixed_fleet(&shared_classifier(), 77, outage);
  const sim::FleetResult heuristic = run_mixed_fleet(
      nullptr, 77, faults::FaultPlan{}, /*all_heuristic=*/true);
  expect_frame_logs_identical(degraded, heuristic);
}

// ---------- identity & invariance ----------

// An empty plan must leave the run bit-identical to one with no fault
// machinery at all, and a plan whose windows can never fire (p = 0) must
// behave the same (its draws come from the disjoint fault stream).
TEST(FaultsIdentity, EmptyAndZeroProbabilityPlansAreNoOps) {
  const sim::FleetResult clean =
      run_mixed_fleet(&shared_classifier(), 77, faults::FaultPlan{});

  faults::FaultPlan zero;
  zero.seed = 9;
  zero.add(faults::FaultKind::kDropAck, 0.0);
  zero.add(faults::FaultKind::kGarbagePhy, 0.0, 100.0, 900.0);
  const sim::FleetResult zeroed = run_mixed_fleet(&shared_classifier(), 77, zero);

  expect_frame_logs_identical(clean, zeroed);
}

// Faulted runs obey the fleet determinism contract: the forest thread
// count must not change a single frame.
TEST(FaultsIdentity, FaultedRunInvariantToForestThreadCount) {
  const core::LibraClassifier serial = make_classifier(1);
  const core::LibraClassifier pooled = make_classifier(4);
  const faults::FaultPlan plan = faults::demo_plan(42);
  const sim::FleetResult a = run_mixed_fleet(&serial, 77, plan);
  const sim::FleetResult b = run_mixed_fleet(&pooled, 77, plan);
  expect_frame_logs_identical(a, b);
}

// ---------- golden digest ----------

// The canonical faulted run, pinned. If a deliberate behavior change moves
// this digest, refresh it with `build/tools/fault_digest` and paste the
// value it prints.
TEST(FaultsGolden, CanonicalDigestIsStable) {
  const sim::FleetResult result = sim::run_canonical_faulted_fleet(
      sim::kGoldenFleetSeed, sim::kGoldenFaultSeed);
  EXPECT_EQ(sim::degradation_digest(result), sim::kGoldenDigest);
  // And the digest derives from a real run: reruns agree.
  const sim::FleetResult again = sim::run_canonical_faulted_fleet(
      sim::kGoldenFleetSeed, sim::kGoldenFaultSeed);
  EXPECT_EQ(sim::degradation_digest(again), sim::degradation_digest(result));
}

// ---------- non-finite input rejection ----------

TEST(FaultsValidation, ExtractFeaturesRejectsNonFiniteMetrics) {
  trace::CaseRecord rec = make_record(6, 4, 5);
  rec.new_at_init_pair.snr_db = kNan;
  EXPECT_THROW(trace::extract_features(rec), std::invalid_argument);

  rec = make_record(6, 4, 5);
  rec.init_best.noise_dbm = kInf;
  EXPECT_THROW(trace::extract_features(rec), std::invalid_argument);

  // Control: the untouched record extracts fine.
  const trace::FeatureVector f = trace::extract_features(make_record(6, 4, 5));
  for (const double v : f.v) EXPECT_TRUE(std::isfinite(v));
}

TEST(FaultsValidation, ExtractFeaturesRejectsTruncatedCdrVector) {
  trace::CaseRecord rec = make_record(6, 4, 5);
  // Chop the per-MCS CDR vector below init_mcs: the lookup must throw, not
  // read out of bounds.
  faults::truncate_record_cdr(rec, 3);
  EXPECT_THROW(trace::extract_features(rec), std::invalid_argument);
  faults::truncate_record_cdr(rec, 0);
  EXPECT_THROW(trace::extract_features(rec), std::invalid_argument);
}

TEST(FaultsValidation, ClassifyRejectsNonFiniteFeatures) {
  const core::LibraClassifier& clf = shared_classifier();
  trace::FeatureVector bad;
  bad.v = {1.0, 2.0, kNan, 0.5, 0.5, 0.9, 6.0};
  util::Rng rng(3);
  EXPECT_THROW(clf.classify(bad, rng), std::invalid_argument);

  std::vector<trace::FeatureVector> rows(2);
  rows[0].v = {1.0, 2.0, 3.0, 0.5, 0.5, 0.9, 6.0};
  rows[1].v = {1.0, kInf, 3.0, 0.5, 0.5, 0.9, 6.0};
  util::Rng r0(4), r1(5);
  std::vector<util::Rng*> rngs{&r0, &r1};
  try {
    clf.classify_batch(rows, rngs);
    FAIL() << "classify_batch accepted a non-finite row";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("row 1"), std::string::npos)
        << e.what();
  }
}

TEST(FaultsValidation, FallbackPolicyDemotesNonFiniteRowsToNoAdaptation) {
  core::LibraClassifierConfig cfg;
  cfg.forest.num_threads = 1;
  cfg.non_finite_policy = core::NonFiniteFeaturePolicy::kFallbackNA;
  core::LibraClassifier clf(cfg);
  {
    trace::Dataset ds;
    for (int i = 0; i < 10; ++i) {
      trace::CaseRecord ba = make_record(4, -1, 4);
      ba.new_at_init_pair.snr_db = 5.0;
      ds.records.push_back(ba);
      trace::CaseRecord na = make_record(6, 6, 6);
      na.forced_na = true;
      ds.na_records.push_back(na);
    }
    util::Rng rng(1);
    clf.train(ds, {}, rng);
  }
  trace::FeatureVector bad;
  bad.v = {kNan, 0.0, 0.0, 1.0, 1.0, 0.95, 6.0};
  util::Rng rng(3);
  EXPECT_EQ(clf.classify(bad, rng), trace::Action::kNA);

  // In a batch the poisoned row is demoted without consuming its stream's
  // draws and without disturbing the other rows' verdicts.
  trace::FeatureVector good;
  good.v = {15.0, 1000.0, 0.0, 0.0, 0.0, 0.0, 4.0};
  std::vector<trace::FeatureVector> rows{good, bad, good};
  util::Rng r0(4), r1(5), r2(4);
  std::vector<util::Rng*> rngs{&r0, &r1, &r2};
  const std::vector<trace::Action> verdicts = clf.classify_batch(rows, rngs);
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts[1], trace::Action::kNA);
  // Rows 0 and 2 started from identical streams (seed 4) and identical
  // features; the dead middle row must not have skewed either.
  EXPECT_EQ(verdicts[0], verdicts[2]);

  // The policy is enforced before any vector kernel sees the row, so the
  // verdicts must be identical whether the SIMD dispatch is active or
  // forced off (same seeds, fresh streams).
  util::simd::ScopedForceScalar scalar;
  util::Rng s0(4), s1(5), s2(4);
  std::vector<util::Rng*> srngs{&s0, &s1, &s2};
  EXPECT_EQ(clf.classify_batch(rows, srngs), verdicts);
}

// ---------- plan validation ----------

TEST(FaultsValidation, PlanValidateRejectsMalformedWindows) {
  faults::FaultPlan p;
  p.add(faults::FaultKind::kDropAck, 1.5);
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p.windows.clear();
  p.add(faults::FaultKind::kDropAck, -0.1);
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p.windows.clear();
  p.add(faults::FaultKind::kStalePhy, 0.5, 500.0, 100.0);  // inverted
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p.windows.clear();
  p.add(faults::FaultKind::kStalePhy, 0.5, kNan, 100.0);
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p.windows.clear();
  p.add(faults::FaultKind::kClockSkew, 1.0, 0.0, faults::kForever, -1.0);
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p.windows.clear();
  p.add(faults::FaultKind::kTruncateFeatures, 1.0, 0.0, faults::kForever, 1.5);
  EXPECT_THROW(p.validate(), std::invalid_argument);

  // The shipped demo plan must of course be valid.
  EXPECT_NO_THROW(faults::demo_plan(7).validate());

  // And run_fleet validates up front.
  faults::FaultPlan bad;
  bad.add(faults::FaultKind::kDropAck, 2.0);
  EXPECT_THROW(run_mixed_fleet(&shared_classifier(), 77, bad),
               std::invalid_argument);
}

TEST(FaultsValidation, HelpersPoisonAndTruncateObservations) {
  phy::PhyObservation obs;
  obs.snr_db = 20.0;
  obs.noise_dbm = -74.0;
  obs.cdr = 0.9;
  obs.throughput_mbps = 1000.0;
  obs.tof_ns = 20.0;
  obs.pdp.assign(64, 1e-9);
  obs.csi.assign(32, 1.0);

  phy::PhyObservation poisoned = obs;
  faults::corrupt_observation(poisoned);
  EXPECT_TRUE(std::isnan(poisoned.snr_db));
  EXPECT_TRUE(std::isinf(poisoned.noise_dbm));
  EXPECT_FALSE(poisoned.tof_ns.has_value());

  phy::PhyObservation chopped = obs;
  faults::truncate_observation(chopped, 0.25);
  EXPECT_EQ(chopped.pdp.size(), 16u);
  EXPECT_EQ(chopped.csi.size(), 8u);
  faults::truncate_observation(chopped, 0.0);  // at least one tap survives
  EXPECT_EQ(chopped.pdp.size(), 1u);
  EXPECT_EQ(chopped.csi.size(), 1u);
}

}  // namespace
}  // namespace libra
