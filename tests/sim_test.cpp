#include <gtest/gtest.h>

#include "sim/event_sim.h"
#include "sim/timeline.h"
#include "sim/vr.h"
#include "test_helpers.h"

namespace libra::sim {
namespace {

using libra::testing::make_record;
using libra::testing::make_trace;

EventParams params(double fat = 10.0, double ba = 5.0, double flow = 1000.0) {
  EventParams p;
  p.fat_ms = fat;
  p.ba_overhead_ms = ba;
  p.flow_ms = flow;
  return p;
}

double tput_of(const trace::PairTrace& t, int mcs) {
  return t.throughput_mbps[(std::size_t)mcs];
}

// ---------- event simulator: plays via public strategies ----------

TEST(EventSim, NaCaseDeliversSteadyBytes) {
  // The impairment does not break the initial MCS: RA First does nothing
  // and delivers at the (still working) initial configuration.
  const trace::CaseRecord rec = make_record(5, 5, 5);
  const EventSimulator simulator;
  util::Rng rng(1);
  const EventResult r =
      simulator.run(rec, core::Strategy::kRaFirst, params(), rng);
  // A handful of (failing) upward probe frames cost a few percent.
  const double expected = tput_of(rec.new_at_init_pair, 5) * 1000.0 / 8000.0;
  EXPECT_NEAR(r.bytes_mb, expected, expected * 0.06);
  EXPECT_LE(r.bytes_mb, expected + 1e-9);
  EXPECT_DOUBLE_EQ(r.recovery_delay_ms, 0.0);
  EXPECT_TRUE(r.link_restored);
}

TEST(EventSim, NonPositiveDurationsThrow) {
  // A negative FAT (now reachable from the CLI: `--fat -1` parses) would
  // step simulated time backwards and never terminate; fail loudly.
  const trace::CaseRecord rec = make_record(5, 5, 5);
  const EventSimulator simulator;
  util::Rng rng(1);
  EXPECT_THROW(
      simulator.run(rec, core::Strategy::kRaFirst, params(-1.0), rng),
      std::invalid_argument);
  EXPECT_THROW(
      simulator.run(rec, core::Strategy::kRaFirst, params(10.0, 5.0, 0.0),
                    rng),
      std::invalid_argument);
  EXPECT_THROW(
      simulator.run(rec, core::Strategy::kRaFirst, params(10.0, -5.0), rng),
      std::invalid_argument);
}

TEST(EventSim, RaFirstWalksDownWhenBroken) {
  // Initial MCS 6 broken, MCS 3 works on the initial pair.
  const trace::CaseRecord rec = make_record(6, 3, 6);
  const EventSimulator simulator;
  util::Rng rng(2);
  const EventResult r =
      simulator.run(rec, core::Strategy::kRaFirst, params(), rng);
  // One detection frame, then probes 6, 5, 4 -> 40 ms until restored.
  EXPECT_DOUBLE_EQ(r.recovery_delay_ms, 50.0);
  EXPECT_EQ(r.settled_pair, PairSel::kInitPair);
  EXPECT_EQ(r.settled_mcs, 3);
}

TEST(EventSim, BaFirstPaysOverheadThenRecovers) {
  const trace::CaseRecord rec = make_record(6, -1, 6);
  const EventSimulator simulator;
  util::Rng rng(3);
  const EventResult r =
      simulator.run(rec, core::Strategy::kBaFirst, params(10.0, 150.0), rng);
  // 1 detection frame + 150 ms sweep + 1 probe at MCS 6 which works.
  EXPECT_DOUBLE_EQ(r.recovery_delay_ms, 170.0);
  EXPECT_EQ(r.settled_pair, PairSel::kBestPair);
  EXPECT_EQ(r.settled_mcs, 6);
}

TEST(EventSim, RaFirstFallsBackToBaWhenExhausted) {
  const trace::CaseRecord rec = make_record(6, -1, 4);
  const EventSimulator simulator;
  util::Rng rng(4);
  const EventResult r =
      simulator.run(rec, core::Strategy::kRaFirst, params(10.0, 5.0), rng);
  // 1 detection frame + 7 failed probes (6..0) + 5 ms BA + probes 6,5,4 on
  // the new pair.
  EXPECT_DOUBLE_EQ(r.recovery_delay_ms, 10.0 + 70.0 + 5.0 + 30.0);
  EXPECT_EQ(r.settled_pair, PairSel::kBestPair);
}

TEST(EventSim, DeadLinkNeverRestores) {
  const trace::CaseRecord rec = make_record(6, -1, -1);
  const EventSimulator simulator;
  util::Rng rng(5);
  const EventResult r =
      simulator.run(rec, core::Strategy::kBaFirst, params(), rng);
  EXPECT_FALSE(r.link_restored);
  EXPECT_DOUBLE_EQ(r.recovery_delay_ms, 1000.0);  // flow length
}

TEST(EventSim, BytesAccountingIncludesProbeFrames) {
  // Flow of exactly 4 frames: one detection frame at the broken MCS 6
  // (0 bytes), probes 6 and 5 (0 bytes), probe 4 (works, delivers) --
  // bytes = tput(4) * 10 ms.
  const trace::CaseRecord rec = make_record(6, 4, 6);
  const EventSimulator simulator;
  util::Rng rng(6);
  const EventResult r = simulator.run(rec, core::Strategy::kRaFirst,
                                      params(10.0, 5.0, 40.0), rng);
  const double expected = tput_of(rec.new_at_init_pair, 4) * 10.0 / 8000.0;
  EXPECT_NEAR(r.bytes_mb, expected, 1e-9);
}

TEST(EventSim, OracleDataAtLeastAsGoodAsEveryone) {
  for (int after_ra : {-1, 2, 5}) {
    for (int after_ba : {-1, 3, 6}) {
      const trace::CaseRecord rec = make_record(6, after_ra, after_ba);
      const EventSimulator simulator;
      util::Rng rng(7);
      const double oracle =
          simulator.run(rec, core::Strategy::kOracleData, params(), rng)
              .bytes_mb;
      for (core::Strategy s :
           {core::Strategy::kRaFirst, core::Strategy::kBaFirst}) {
        const double b = simulator.run(rec, s, params(), rng).bytes_mb;
        EXPECT_GE(oracle + 1e-9, b) << "strategy " << core::to_string(s);
      }
    }
  }
}

TEST(EventSim, OracleDelayMinimizesRecovery) {
  for (int after_ra : {-1, 2, 5}) {
    for (int after_ba : {-1, 3, 6}) {
      const trace::CaseRecord rec = make_record(6, after_ra, after_ba);
      const EventSimulator simulator;
      util::Rng rng(8);
      const double oracle =
          simulator.run(rec, core::Strategy::kOracleDelay, params(), rng)
              .recovery_delay_ms;
      for (core::Strategy s :
           {core::Strategy::kRaFirst, core::Strategy::kBaFirst}) {
        const double d = simulator.run(rec, s, params(), rng).recovery_delay_ms;
        EXPECT_LE(oracle, d + 1e-9) << "strategy " << core::to_string(s);
      }
    }
  }
}

TEST(EventSim, LibraRequiresClassifier) {
  const trace::CaseRecord rec = make_record(6, 3, 6);
  const EventSimulator simulator;  // no classifier
  util::Rng rng(9);
  EXPECT_THROW(simulator.run(rec, core::Strategy::kLibra, params(), rng),
               std::logic_error);
}

TEST(EventSim, LibraNoAckRuleFiresOnDeadLink) {
  // CDR 0 at the initial MCS: the first frame loses its ACK and the rule
  // picks BA (MCS < 6) -- recovery = 1 lead frame + BA + 1 probe.
  core::LibraClassifier clf;
  trace::Dataset ds;
  for (int i = 0; i < 10; ++i) ds.records.push_back(make_record(6, 3, 6));
  util::Rng rng(10);
  clf.train(ds, {}, rng);
  const EventSimulator simulator(&clf);
  const trace::CaseRecord rec = make_record(4, -1, 4);
  const EventResult r =
      simulator.run(rec, core::Strategy::kLibra, params(10.0, 5.0), rng);
  EXPECT_DOUBLE_EQ(r.recovery_delay_ms, 10.0 + 5.0 + 10.0);
  EXPECT_EQ(r.settled_pair, PairSel::kBestPair);
}

TEST(EventSim, BeamSoundingHopsToFailoverInstantly) {
  // Primary broken, failover supports MCS 5: recovery = 1 detection frame +
  // 2 probes (6 fails, 5 works) -- no sweep.
  const trace::CaseRecord rec = make_record(
      6, -1, 6, trace::Impairment::kDisplacement, /*after_failover=*/5);
  const EventSimulator simulator;
  util::Rng rng(21);
  const EventResult r = simulator.run(rec, core::Strategy::kBeamSounding,
                                      params(10.0, 150.0), rng);
  EXPECT_DOUBLE_EQ(r.recovery_delay_ms, 10.0 + 20.0);
  EXPECT_EQ(r.settled_pair, PairSel::kFailoverPair);
  EXPECT_EQ(r.settled_mcs, 5);
}

TEST(EventSim, BeamSoundingFallsBackToSweepWhenFailoverDead) {
  // Primary and failover both dead: full walk on the failover (7 probes),
  // then the sweep, then recovery on the new best pair.
  const trace::CaseRecord rec = make_record(
      6, -1, 6, trace::Impairment::kDisplacement, /*after_failover=*/-1);
  const EventSimulator simulator;
  util::Rng rng(22);
  const EventResult r = simulator.run(rec, core::Strategy::kBeamSounding,
                                      params(10.0, 150.0), rng);
  EXPECT_DOUBLE_EQ(r.recovery_delay_ms, 10.0 + 70.0 + 150.0 + 10.0);
  EXPECT_EQ(r.settled_pair, PairSel::kBestPair);
}

TEST(EventSim, BeamSoundingDoesNothingWhileWorking) {
  const trace::CaseRecord rec = make_record(5, 5, 5);
  const EventSimulator simulator;
  util::Rng rng(23);
  const EventResult r = simulator.run(rec, core::Strategy::kBeamSounding,
                                      params(), rng);
  EXPECT_DOUBLE_EQ(r.recovery_delay_ms, 0.0);
  EXPECT_EQ(r.settled_pair, PairSel::kInitPair);
}

TEST(EventSim, RecordedSeriesCoversFlow) {
  const trace::CaseRecord rec = make_record(6, 3, 6);
  const EventSimulator simulator;
  util::Rng rng(11);
  const EventResult r = simulator.run(rec, core::Strategy::kRaFirst, params(),
                                      rng, /*record_series=*/true);
  double total = 0.0;
  for (const auto& [tput, dur] : r.tput_segments) total += dur;
  EXPECT_NEAR(total, 1000.0, 1e-6);
}

TEST(EventSim, UpProbingRecoversHigherMcsAfterBa) {
  // After BA the new pair supports MCS 8, but RA-after-BA settles at the
  // initial MCS 4; the periodic upward probes climb the rest during a long
  // flow, so bytes beat a no-up-probe baseline of tput(4).
  const trace::CaseRecord rec = make_record(4, -1, 8);
  const EventSimulator simulator;
  util::Rng rng(12);
  const EventResult r = simulator.run(rec, core::Strategy::kBaFirst,
                                      params(10.0, 5.0, 3000.0), rng);
  EXPECT_GT(r.settled_mcs, 4);
  const double floor_bytes = tput_of(rec.new_best, 4) * 3000.0 / 8000.0;
  EXPECT_GT(r.bytes_mb, floor_bytes);
}

// ---------- property sweeps across strategies and configurations ----------

struct StrategyCase {
  core::Strategy strategy;
  double fat_ms;
  double ba_ms;
};

class StrategySweep : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategySweep, InvariantsHoldOnEveryRecordShape) {
  const auto [strategy, fat, ba] = GetParam();
  // LiBRA needs a classifier; the sweep covers the other four strategies.
  const EventSimulator simulator;
  for (int init : {4, 6, 8}) {
    for (int after_ra : {-1, 2, init}) {
      for (int after_ba : {-1, 3, init}) {
        const trace::CaseRecord rec = make_record(init, after_ra, after_ba);
        util::Rng rng(99);
        const EventResult r =
            simulator.run(rec, strategy, params(fat, ba), rng);
        // Bytes are bounded by a full flow at the best possible rate.
        const double cap = 4750.0 * 0.92 * 1000.0 / 8000.0;
        EXPECT_GE(r.bytes_mb, 0.0);
        EXPECT_LE(r.bytes_mb, cap + 1e-6);
        // Delay is within [0, flow].
        EXPECT_GE(r.recovery_delay_ms, 0.0);
        EXPECT_LE(r.recovery_delay_ms, 1000.0 + 1e-9);
        // A working new-best pair guarantees restoration for every strategy
        // (each falls back to BA eventually). Note after_ba >= after_ra in
        // any physically collected record (the sweep picks the max-SNR
        // pair), so after_ba = -1 with a working stale pair only exists in
        // synthetic inputs; no restoration promise is made there for
        // BA-first-style paths.
        if (after_ba >= 0) {
          EXPECT_TRUE(r.link_restored)
              << "init=" << init << " ra=" << after_ra << " ba=" << after_ba;
        }
        // Settled MCS is a valid index.
        EXPECT_GE(r.settled_mcs, 0);
        EXPECT_LE(r.settled_mcs, 8);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndConfigs, StrategySweep,
    ::testing::Values(
        StrategyCase{core::Strategy::kRaFirst, 2.0, 0.5},
        StrategyCase{core::Strategy::kRaFirst, 10.0, 250.0},
        StrategyCase{core::Strategy::kBaFirst, 2.0, 0.5},
        StrategyCase{core::Strategy::kBaFirst, 10.0, 250.0},
        StrategyCase{core::Strategy::kOracleData, 2.0, 5.0},
        StrategyCase{core::Strategy::kOracleData, 10.0, 150.0},
        StrategyCase{core::Strategy::kOracleDelay, 2.0, 5.0},
        StrategyCase{core::Strategy::kOracleDelay, 10.0, 150.0}));

class FlowLengthSweep : public ::testing::TestWithParam<double> {};

TEST_P(FlowLengthSweep, BytesMonotoneInFlowLength) {
  const double flow = GetParam();
  const trace::CaseRecord rec = make_record(6, 3, 6);
  const EventSimulator simulator;
  util::Rng rng(7);
  const double shorter =
      simulator.run(rec, core::Strategy::kBaFirst, params(10, 5, flow), rng)
          .bytes_mb;
  const double longer =
      simulator
          .run(rec, core::Strategy::kBaFirst, params(10, 5, flow + 500), rng)
          .bytes_mb;
  EXPECT_GT(longer, shorter);
}

INSTANTIATE_TEST_SUITE_P(Flows, FlowLengthSweep,
                         ::testing::Values(200.0, 400.0, 1000.0, 2000.0));

// ---------- timelines ----------

trace::Dataset pool_dataset() {
  trace::Dataset ds;
  for (int i = 0; i < 5; ++i) {
    ds.records.push_back(make_record(6, 3, 6, trace::Impairment::kDisplacement));
    ds.records.push_back(make_record(6, -1, 5, trace::Impairment::kBlockage));
    ds.records.push_back(make_record(6, 5, 5, trace::Impairment::kInterference));
  }
  return ds;
}

TEST(Timeline, PoolsSplitByImpairment) {
  const trace::Dataset ds = pool_dataset();
  const RecordPools pools = RecordPools::from_dataset(ds);
  EXPECT_EQ(pools.displacement.size(), 5u);
  EXPECT_EQ(pools.blockage.size(), 5u);
  EXPECT_EQ(pools.interference.size(), 5u);
}

TEST(Timeline, MotionTimelineAllImpaired) {
  const trace::Dataset ds = pool_dataset();
  const RecordPools pools = RecordPools::from_dataset(ds);
  util::Rng rng(1);
  const auto timeline = make_timeline(ScenarioType::kMotion, pools, {}, rng);
  ASSERT_EQ(timeline.size(), 10u);
  for (const auto& seg : timeline) {
    EXPECT_TRUE(seg.impaired);
    EXPECT_EQ(seg.record->impairment, trace::Impairment::kDisplacement);
    EXPECT_GE(seg.duration_ms, 300.0);
    EXPECT_LE(seg.duration_ms, 3000.0);
  }
}

TEST(Timeline, BlockageTimelineAlternates) {
  const trace::Dataset ds = pool_dataset();
  const RecordPools pools = RecordPools::from_dataset(ds);
  util::Rng rng(2);
  const auto timeline = make_timeline(ScenarioType::kBlockage, pools, {}, rng);
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    EXPECT_EQ(timeline[i].impaired, i % 2 == 0);
  }
}

TEST(Timeline, MixedDrawsFromAllPools) {
  const trace::Dataset ds = pool_dataset();
  const RecordPools pools = RecordPools::from_dataset(ds);
  util::Rng rng(3);
  std::set<trace::Impairment> seen;
  for (int i = 0; i < 20; ++i) {
    for (const auto& seg : make_timeline(ScenarioType::kMixed, pools, {}, rng)) {
      if (seg.impaired) seen.insert(seg.record->impairment);
    }
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Timeline, EmptyPoolThrows) {
  RecordPools pools;  // all empty
  util::Rng rng(4);
  EXPECT_THROW(make_timeline(ScenarioType::kMotion, pools, {}, rng),
               std::invalid_argument);
}

// The empty-pool guard must fire for EVERY pool a scenario can draw from
// (not just displacement) and must name the missing pool -- a
// blockage-only dataset failing a Mixed timeline is otherwise a puzzle.
TEST(Timeline, EmptyPoolThrowsPerScenarioAndNamesPool) {
  const trace::Dataset ds = pool_dataset();
  const RecordPools full = RecordPools::from_dataset(ds);

  RecordPools no_blockage = full;
  no_blockage.blockage.clear();
  util::Rng rng(4);
  EXPECT_THROW(make_timeline(ScenarioType::kBlockage, no_blockage, {}, rng),
               std::invalid_argument);
  try {
    make_timeline(ScenarioType::kBlockage, no_blockage, {}, rng);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("blockage"), std::string::npos)
        << e.what();
  }

  RecordPools no_interference = full;
  no_interference.interference.clear();
  EXPECT_THROW(
      make_timeline(ScenarioType::kInterference, no_interference, {}, rng),
      std::invalid_argument);

  // Mixed draws from all three pools, so any single empty pool eventually
  // trips the guard (20 segments make a miss astronomically unlikely).
  RecordPools no_displacement = full;
  no_displacement.displacement.clear();
  TimelineConfig many;
  many.segments = 20;
  EXPECT_THROW(
      make_timeline(ScenarioType::kMixed, no_displacement, many, rng),
      std::invalid_argument);
}

TEST(Timeline, InvalidConfigThrows) {
  const trace::Dataset ds = pool_dataset();
  const RecordPools pools = RecordPools::from_dataset(ds);
  util::Rng rng(4);
  TimelineConfig negative;
  negative.segments = -1;
  EXPECT_THROW(make_timeline(ScenarioType::kMotion, pools, negative, rng),
               std::invalid_argument);
  TimelineConfig inverted;
  inverted.min_segment_ms = 500.0;
  inverted.max_segment_ms = 100.0;
  EXPECT_THROW(make_timeline(ScenarioType::kMotion, pools, inverted, rng),
               std::invalid_argument);
  TimelineConfig zero_min;
  zero_min.min_segment_ms = 0.0;
  EXPECT_THROW(make_timeline(ScenarioType::kMotion, pools, zero_min, rng),
               std::invalid_argument);
}

TEST(Timeline, RunAccumulatesBytesAndBreaks) {
  const trace::Dataset ds = pool_dataset();
  const RecordPools pools = RecordPools::from_dataset(ds);
  util::Rng rng(5);
  const auto timeline = make_timeline(ScenarioType::kMotion, pools, {}, rng);
  const EventSimulator simulator;
  const TimelineResult r =
      run_timeline(timeline, core::Strategy::kRaFirst, simulator, params(),
                   rng);
  EXPECT_GT(r.bytes_mb, 0.0);
  EXPECT_EQ(r.link_breaks, 10);  // every motion segment breaks MCS 6
  EXPECT_GT(r.avg_recovery_delay_ms, 0.0);
}

TEST(Timeline, ClearSegmentsUseRecoveredTrace) {
  // Interference cases that keep the initial MCS working: no link breaks.
  trace::Dataset ds;
  for (int i = 0; i < 5; ++i) {
    ds.records.push_back(
        make_record(6, 6, 6, trace::Impairment::kInterference));
  }
  const RecordPools pools = RecordPools::from_dataset(ds);
  util::Rng rng(6);
  const auto timeline =
      make_timeline(ScenarioType::kInterference, pools, {}, rng);
  const EventSimulator simulator;
  const TimelineResult r = run_timeline(
      timeline, core::Strategy::kRaFirst, simulator, params(), rng);
  // Interference pool records stay working (after_ra = 5): no link breaks.
  EXPECT_EQ(r.link_breaks, 0);
  EXPECT_GT(r.bytes_mb, 0.0);
}

TEST(Timeline, ScenarioTypeNames) {
  EXPECT_EQ(to_string(ScenarioType::kMotion), "Motion");
  EXPECT_EQ(to_string(ScenarioType::kMixed), "Mixed");
  EXPECT_EQ(std::size(kAllScenarioTypes), 4u);
}

// ---------- VR ----------

TEST(Vr, FrameSizesMatchBitrate) {
  const VrConfig cfg;
  util::Rng rng(1);
  const auto frames = generate_frame_sizes_mb(cfg, 10000.0, rng);
  EXPECT_EQ(frames.size(), 600u);  // 10 s at 60 FPS
  double total = 0.0;
  for (double f : frames) total += f;
  // Total MB over 10 s at 1200 Mbps = 1500 MB.
  EXPECT_NEAR(total, 1500.0, 1500.0 * 0.05);
}

TEST(Vr, IframesAreLarger) {
  const VrConfig cfg;
  util::Rng rng(2);
  const auto frames = generate_frame_sizes_mb(cfg, 5000.0, rng);
  double iframe_avg = 0.0, pframe_avg = 0.0;
  int ni = 0, np = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i % (std::size_t)cfg.gop_frames == 0) {
      iframe_avg += frames[i];
      ++ni;
    } else {
      pframe_avg += frames[i];
      ++np;
    }
  }
  EXPECT_GT(iframe_avg / ni, 1.5 * pframe_avg / np);
}

TEST(Vr, FastLinkNeverStalls) {
  const VrConfig cfg;
  util::Rng rng(3);
  const auto frames = generate_frame_sizes_mb(cfg, 5000.0, rng);
  // 10 Gbps link: far above demand.
  const std::vector<std::pair<double, double>> tput = {{10000.0, 6000.0}};
  const VrResult r = play_vr(frames, tput, cfg);
  EXPECT_EQ(r.stalls, 0);
  EXPECT_DOUBLE_EQ(r.total_stall_ms, 0.0);
}

TEST(Vr, OutageCausesOneStallThenRecovery) {
  VrConfig cfg;
  cfg.scene_swing = 0.0;
  cfg.iframe_boost = 1.0;
  util::Rng rng(4);
  const auto frames = generate_frame_sizes_mb(cfg, 3000.0, rng);
  // Healthy, then a 200 ms outage, then healthy.
  const std::vector<std::pair<double, double>> tput = {
      {8000.0, 1000.0}, {0.0, 200.0}, {8000.0, 3000.0}};
  const VrResult r = play_vr(frames, tput, cfg);
  EXPECT_GE(r.stalls, 1);
  EXPECT_LE(r.stalls, 3);
  EXPECT_NEAR(r.total_stall_ms, 200.0, 60.0);
}

TEST(Vr, StarvedLinkStallsRepeatedly) {
  VrConfig cfg;
  cfg.cots_scale = 1.0;
  util::Rng rng(5);
  const auto frames = generate_frame_sizes_mb(cfg, 2000.0, rng);
  // Link at half the demand: playback limps, stalling again and again.
  const std::vector<std::pair<double, double>> tput = {{600.0, 8000.0}};
  const VrResult r = play_vr(frames, tput, cfg);
  EXPECT_GT(r.stalls, 10);
  EXPECT_GT(r.avg_stall_ms, 0.0);
}

TEST(Vr, AvgStallIsTotalOverCount) {
  VrConfig cfg;
  util::Rng rng(6);
  const auto frames = generate_frame_sizes_mb(cfg, 2000.0, rng);
  const std::vector<std::pair<double, double>> tput = {{1500.0, 8000.0}};
  const VrResult r = play_vr(frames, tput, cfg);
  if (r.stalls > 0) {
    EXPECT_NEAR(r.avg_stall_ms, r.total_stall_ms / r.stalls, 1e-9);
  }
}

}  // namespace
}  // namespace libra::sim
