#include <gtest/gtest.h>

#include "env/registry.h"
#include "mac/ack.h"
#include "mac/beacon_interval.h"
#include "mac/csma.h"
#include "mac/beam_training.h"
#include "mac/timing.h"
#include "phy/sampler.h"

namespace libra::mac {
namespace {

// ---------- timing ----------

TEST(Timing, TdmaFrameStructure) {
  const TdmaConfig tdma;
  EXPECT_DOUBLE_EQ(tdma.frame_ms, 10.0);
  EXPECT_EQ(tdma.codewords_per_frame(), 9200);
  EXPECT_NEAR(tdma.slots_per_frame * tdma.slot_us / 1000.0, tdma.frame_ms,
              1e-9);
}

TEST(Timing, WorstCaseDelayFormula) {
  // Dmax = N*FAT + dBA + N*FAT (Sec. 5.2).
  EXPECT_DOUBLE_EQ(worst_case_delay_ms(9, 10.0, 5.0), 185.0);
  EXPECT_DOUBLE_EQ(worst_case_delay_ms(9, 2.0, 250.0), 286.0);
}

TEST(Timing, AlphaFollowsBaOverhead) {
  // Sec. 8.1: alpha = 0.7 for cheap BA, 0.5 for expensive BA.
  EXPECT_DOUBLE_EQ(alpha_for_ba_overhead(0.5), 0.7);
  EXPECT_DOUBLE_EQ(alpha_for_ba_overhead(5.0), 0.7);
  EXPECT_DOUBLE_EQ(alpha_for_ba_overhead(150.0), 0.5);
  EXPECT_DOUBLE_EQ(alpha_for_ba_overhead(250.0), 0.5);
}

TEST(Timing, PaperParameterGrids) {
  EXPECT_EQ(std::size(kBaOverheadsMs), 4u);
  EXPECT_EQ(std::size(kFatsMs), 2u);
}

// ---------- beacon-interval / SSW timing ----------

TEST(BeaconInterval, SectorsForBeamwidth) {
  EXPECT_EQ(sectors_for_beamwidth(360.0, 30.0), 12);
  EXPECT_EQ(sectors_for_beamwidth(360.0, 7.0), 52);  // ceil(51.4)
  EXPECT_EQ(sectors_for_beamwidth(120.0, 5.0), 24);
  EXPECT_THROW(sectors_for_beamwidth(360.0, 0.0), std::invalid_argument);
}

TEST(BeaconInterval, SlsDurationScalesLinearly) {
  const double d12 = sls_duration_ms(12);
  const double d24 = sls_duration_ms(24);
  EXPECT_GT(d24, 1.8 * d12);
  EXPECT_LT(d24, 2.2 * d12);
  EXPECT_THROW(sls_duration_ms(0), std::invalid_argument);
}

TEST(BeaconInterval, FullSlsCoversBothSides) {
  EXPECT_GT(full_sls_duration_ms(12, 12), sls_duration_ms(12));
  // Sec. 8.1 anchor: 30-degree beams (12 sectors over 360) land near the
  // paper's 0.5 ms; 3-degree beams near 5 ms.
  EXPECT_NEAR(full_sls_duration_ms(12, 12), 0.5, 0.15);
  EXPECT_NEAR(full_sls_duration_ms(120, 120), 5.0, 1.2);
}

TEST(BeaconInterval, ExhaustiveScalesQuadratically) {
  const double d10 = exhaustive_duration_ms(10, 10);
  const double d20 = exhaustive_duration_ms(20, 20);
  EXPECT_GT(d20, 3.5 * d10);
  EXPECT_LT(d20, 4.5 * d10);
}

TEST(BeaconInterval, AbftContention) {
  EXPECT_DOUBLE_EQ(expected_abft_intervals(1), 1.0);
  // More contenders => more expected beacon intervals, monotonically.
  double prev = 1.0;
  for (int n = 2; n <= 16; ++n) {
    const double e = expected_abft_intervals(n);
    EXPECT_GT(e, prev);
    prev = e;
  }
  EXPECT_THROW(expected_abft_intervals(0), std::invalid_argument);
}

// ---------- ACK model ----------

TEST(AckModel, HighSnrAlwaysAcks) {
  const phy::McsTable t;
  const phy::ErrorModel em(&t);
  const AckModel ack(&em);
  EXPECT_NEAR(ack.ack_probability(0, 30.0), 1.0, 1e-9);
}

TEST(AckModel, DeepFadeLosesAck) {
  const phy::McsTable t;
  const phy::ErrorModel em(&t);
  const AckModel ack(&em);
  EXPECT_LT(ack.ack_probability(8, 0.0), 0.01);
}

TEST(AckModel, MoreSubframesMoreRobust) {
  const phy::McsTable t;
  const phy::ErrorModel em(&t);
  const AckModel few(&em, {4});
  const AckModel many(&em, {64});
  const double snr = t.entry(4).snr_threshold_db - 1.0;
  EXPECT_GT(many.ack_probability(4, snr), few.ack_probability(4, snr));
}

TEST(AckModel, InvalidConfigThrows) {
  const phy::McsTable t;
  const phy::ErrorModel em(&t);
  EXPECT_THROW(AckModel(nullptr), std::invalid_argument);
  EXPECT_THROW(AckModel(&em, {0}), std::invalid_argument);
}

// ---------- CSMA / hidden terminal ----------

TEST(Csma, UnthrottledDutyScalesWithLoad) {
  EXPECT_DOUBLE_EQ(unthrottled_duty(0.0), 0.0);
  EXPECT_GT(unthrottled_duty(1.0), 0.95);  // airtime dominates contention
  EXPECT_NEAR(unthrottled_duty(0.5), 0.5 * unthrottled_duty(1.0), 1e-12);
  EXPECT_THROW(unthrottled_duty(1.5), std::invalid_argument);
}

TEST(Csma, SensingSerializesInterference) {
  EXPECT_DOUBLE_EQ(interference_duty(true, 0.8), 0.0);
  EXPECT_GT(interference_duty(false, 0.8), 0.7);
}

TEST(Csma, DirectionalDeafnessCreatesHiddenTerminal) {
  // Victim Tx and an interferer in a box; the interferer listens quasi-omni.
  phy::McsTable table;
  phy::ErrorModel em(&table);
  env::Environment box("box", env::rectangle_walls(20, 10, 8, 8, 8, 8));
  array::Codebook codebook;
  array::PhasedArray victim_tx({2, 5}, 0.0, &codebook);
  array::PhasedArray interferer({18, 5}, 180.0, &codebook);
  channel::Link towards(&box, &victim_tx, &interferer);
  // The victim beams straight at the interferer: easily sensed.
  EXPECT_TRUE(can_sense(towards, 12, array::kQuasiOmni));
  // The victim beams 60 degrees away: only side lobes reach the
  // interferer and sensing fails -> hidden terminal.
  EXPECT_FALSE(can_sense(towards, 0, array::kQuasiOmni));
}

TEST(Csma, DutyCoversTheDatasetLevels) {
  // The three calibrated interference levels (20/50/80% throughput drop)
  // correspond to offered loads ~0.2/0.5/0.8 of a deaf interferer.
  for (double load : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(interference_duty(false, load), load, 0.03);
  }
}

// ---------- beam training ----------

struct TrainerFixture : ::testing::Test {
  TrainerFixture()
      : em(&table),
        environment("box", env::rectangle_walls(20, 10, 8, 8, 8, 8)),
        tx({2, 5}, 0.0, &codebook),
        rx({18, 5}, 180.0, &codebook),
        link(&environment, &tx, &rx),
        sampler(&em, low_noise()) {}

  static phy::SamplerConfig low_noise() {
    phy::SamplerConfig cfg;
    cfg.snr_jitter_db = 0.01;  // near-noiseless probes for determinism
    return cfg;
  }

  phy::McsTable table;
  phy::ErrorModel em;
  array::Codebook codebook;
  env::Environment environment;
  array::PhasedArray tx;
  array::PhasedArray rx;
  channel::Link link;
  phy::PhySampler sampler;
};

TEST_F(TrainerFixture, ExhaustiveFindsAlignedPair) {
  const BeamTrainer trainer;
  util::Rng rng(1);
  const SweepResult r = trainer.exhaustive(link, sampler, rng);
  // The Tx looks straight at the Rx (beam 12 steers 0 degrees) and vice
  // versa; allow one beam of slack for side-lobe quirks.
  EXPECT_NEAR(r.tx_beam, 12, 1);
  EXPECT_NEAR(r.rx_beam, 12, 1);
  EXPECT_EQ(r.measurements, 625);
  EXPECT_NEAR(r.snr_db, link.snr_db(r.tx_beam, r.rx_beam), 0.5);
}

TEST_F(TrainerFixture, SlsMeasuresTwoSweeps) {
  const BeamTrainer trainer;
  util::Rng rng(2);
  const SweepResult r = trainer.sls_80211ad(link, sampler, rng);
  EXPECT_EQ(r.measurements, 50);
  EXPECT_NEAR(r.tx_beam, 12, 1);
  EXPECT_NEAR(r.rx_beam, 12, 1);
}

TEST_F(TrainerFixture, TxOnlySweepUsesQuasiOmni) {
  const BeamTrainer trainer;
  util::Rng rng(3);
  const SweepResult r = trainer.sls_tx_only(link, sampler, rng);
  EXPECT_EQ(r.measurements, 25);
  EXPECT_EQ(r.rx_beam, array::kQuasiOmni);
  EXPECT_NEAR(r.tx_beam, 12, 1);
}

TEST_F(TrainerFixture, SweepDurationsScaleWithProbes) {
  const BeamTrainer trainer({20.0});
  util::Rng rng(4);
  const auto exhaustive = trainer.exhaustive(link, sampler, rng);
  const auto sls = trainer.sls_80211ad(link, sampler, rng);
  const auto tx_only = trainer.sls_tx_only(link, sampler, rng);
  EXPECT_DOUBLE_EQ(exhaustive.duration_ms, 625 * 0.02);
  EXPECT_DOUBLE_EQ(sls.duration_ms, 50 * 0.02);
  EXPECT_DOUBLE_EQ(tx_only.duration_ms, 25 * 0.02);
  // The complexity ordering of Sec. 2: O(N^2) >> O(N) > O(N)/2.
  EXPECT_GT(exhaustive.duration_ms, sls.duration_ms);
  EXPECT_GT(sls.duration_ms, tx_only.duration_ms);
}

TEST_F(TrainerFixture, ExhaustiveAtLeastAsGoodAsSls) {
  const BeamTrainer trainer;
  util::Rng rng(5);
  const auto exhaustive = trainer.exhaustive(link, sampler, rng);
  const auto sls = trainer.sls_80211ad(link, sampler, rng);
  EXPECT_GE(link.snr_db(exhaustive.tx_beam, exhaustive.rx_beam) + 0.2,
            link.snr_db(sls.tx_beam, sls.rx_beam));
}

TEST_F(TrainerFixture, CoarseFineNearExhaustiveQuality) {
  const BeamTrainer trainer;
  util::Rng rng(7);
  const auto exhaustive = trainer.exhaustive(link, sampler, rng);
  const auto cf = trainer.coarse_fine(link, sampler, rng);
  // 12x fewer probes, within a fraction of a dB of the optimum.
  EXPECT_LE(cf.measurements, 55);
  EXPECT_GE(link.snr_db(cf.tx_beam, cf.rx_beam) + 0.8,
            link.snr_db(exhaustive.tx_beam, exhaustive.rx_beam));
}

TEST_F(TrainerFixture, CoarseFineProbeBudget) {
  const BeamTrainer trainer;
  util::Rng rng(8);
  // stride 5 -> 5x5 coarse; radius 2 -> up to 5x5 refine minus the center.
  const auto r = trainer.coarse_fine(link, sampler, rng, 5, 2);
  EXPECT_EQ(r.measurements, 25 + 24);
  // A wider stride shrinks the coarse level.
  const auto wide = trainer.coarse_fine(link, sampler, rng, 12, 1);
  EXPECT_LT(wide.measurements, r.measurements);
}

TEST_F(TrainerFixture, SweepTracksRotatedRx) {
  // Rotate the Rx by 45 degrees: the best Rx beam moves off center.
  rx.set_boresight_deg(135.0);
  link.refresh();
  const BeamTrainer trainer;
  util::Rng rng(6);
  const SweepResult r = trainer.exhaustive(link, sampler, rng);
  // The Tx->Rx arrival is at world 180; array frame 180-135=45 -> beam 21.
  EXPECT_NEAR(r.rx_beam, 21, 1);
}

}  // namespace
}  // namespace libra::mac
