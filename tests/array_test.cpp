#include <gtest/gtest.h>

#include <cmath>

#include "array/codebook.h"
#include "array/phased_array.h"

namespace libra::array {
namespace {

TEST(Codebook, DefaultHas25Beams) {
  const Codebook cb;
  EXPECT_EQ(cb.size(), 25);
}

TEST(Codebook, SteeringSpansMinusSixtyToSixty) {
  const Codebook cb;
  EXPECT_DOUBLE_EQ(cb.beam(0).steering_deg(), -60.0);
  EXPECT_DOUBLE_EQ(cb.beam(24).steering_deg(), 60.0);
}

TEST(Codebook, SteeringSpacingIsFiveDegrees) {
  const Codebook cb;
  for (int i = 1; i < cb.size(); ++i) {
    EXPECT_NEAR(cb.beam(i).steering_deg() - cb.beam(i - 1).steering_deg(),
                5.0, 1e-9);
  }
}

TEST(Codebook, PeakGainAtSteeringAngle) {
  const Codebook cb;
  for (int i = 0; i < cb.size(); ++i) {
    const BeamPattern& b = cb.beam(i);
    EXPECT_NEAR(b.gain_dbi(b.steering_deg()), b.peak_gain_dbi(), 1e-9);
  }
}

TEST(Codebook, HalfPowerBeamwidth) {
  const Codebook cb;
  for (int i = 0; i < cb.size(); ++i) {
    const BeamPattern& b = cb.beam(i);
    // 3 dB down at half the HPBW off the peak (unless a side lobe pokes up
    // there, which the construction keeps far away from the main lobe).
    const double g = b.gain_dbi(b.steering_deg() + b.hpbw_deg() / 2.0);
    EXPECT_NEAR(g, b.peak_gain_dbi() - 3.0, 0.5);
    // HPBW within the SiBeam 25-35 degree range (Sec. 4.1).
    EXPECT_GE(b.hpbw_deg(), 25.0);
    EXPECT_LE(b.hpbw_deg(), 35.0);
  }
}

TEST(Codebook, SideLobesBelowMainLobe) {
  const Codebook cb;
  for (int i = 0; i < cb.size(); ++i) {
    for (const SideLobe& sl : cb.beam(i).side_lobes()) {
      EXPECT_LT(sl.gain_db, 0.0);
      EXPECT_GT(std::abs(sl.offset_deg), 30.0);
    }
  }
}

TEST(Codebook, GainNeverBelowBacklobeFloor) {
  const Codebook cb;
  for (int i = 0; i < cb.size(); ++i) {
    for (double a = -180.0; a <= 180.0; a += 3.0) {
      EXPECT_GE(cb.gain_dbi(i, a), cb.config().backlobe_floor_dbi);
      EXPECT_LE(cb.gain_dbi(i, a), cb.config().peak_gain_dbi + 1e-9);
    }
  }
}

TEST(Codebook, QuasiOmniFrontVsBack) {
  const Codebook cb;
  EXPECT_DOUBLE_EQ(cb.gain_dbi(kQuasiOmni, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(cb.gain_dbi(kQuasiOmni, 80.0), 3.0);
  EXPECT_DOUBLE_EQ(cb.gain_dbi(kQuasiOmni, 170.0), -5.0);
}

TEST(Codebook, NearestBeam) {
  const Codebook cb;
  EXPECT_EQ(cb.nearest_beam(0.0), 12);
  EXPECT_EQ(cb.nearest_beam(-60.0), 0);
  EXPECT_EQ(cb.nearest_beam(60.0), 24);
  EXPECT_EQ(cb.nearest_beam(58.0), 24);
  EXPECT_EQ(cb.nearest_beam(-120.0), 0);
}

TEST(Codebook, DeterministicAcrossInstances) {
  const Codebook a, b;
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.gain_dbi(i, 17.0), b.gain_dbi(i, 17.0));
  }
}

TEST(Codebook, DifferentSeedDifferentSideLobes) {
  CodebookConfig cfg;
  cfg.pattern_seed = 99;
  const Codebook a, b(cfg);
  bool any_diff = false;
  for (int i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = std::abs(a.gain_dbi(i, 100.0) - b.gain_dbi(i, 100.0)) > 0.1;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Codebook, InvalidAccessThrows) {
  const Codebook cb;
  EXPECT_THROW(cb.beam(25), std::out_of_range);
  EXPECT_THROW(cb.beam(-1), std::out_of_range);
  CodebookConfig bad;
  bad.num_beams = 0;
  EXPECT_THROW(Codebook{bad}, std::invalid_argument);
}

TEST(Codebook, SingleBeamCodebook) {
  CodebookConfig cfg;
  cfg.num_beams = 1;
  const Codebook cb(cfg);
  EXPECT_EQ(cb.size(), 1);
  // A single beam steers to the center of the span.
  EXPECT_NEAR(cb.beam(0).steering_deg(), 0.0, 1e-9);
}

TEST(Codebook, AdjacentMainLobesOverlap) {
  // 5-degree spacing with ~30-degree HPBW: a beam's gain toward its
  // neighbor's steering angle stays within ~1 dB of its own peak.
  const Codebook cb;
  for (int i = 0; i + 1 < cb.size(); ++i) {
    const double g = cb.beam(i).gain_dbi(cb.beam(i + 1).steering_deg());
    EXPECT_GT(g, cb.beam(i).peak_gain_dbi() - 1.5);
  }
}

TEST(PhasedArray, WorldFrameGain) {
  const Codebook cb;
  PhasedArray arr({0, 0}, 90.0, &cb);
  // Beam 12 steers 0 degrees in the array frame = 90 degrees in the world.
  EXPECT_NEAR(arr.gain_dbi(12, 90.0), cb.beam(12).peak_gain_dbi(), 1e-9);
}

TEST(PhasedArray, Rotation) {
  const Codebook cb;
  PhasedArray arr({0, 0}, 0.0, &cb);
  arr.rotate(45.0);
  EXPECT_DOUBLE_EQ(arr.boresight_deg(), 45.0);
  arr.rotate(180.0);
  EXPECT_DOUBLE_EQ(arr.boresight_deg(), -135.0);  // wrapped
}

TEST(PhasedArray, AngleTo) {
  const Codebook cb;
  const PhasedArray arr({1, 1}, 0.0, &cb);
  EXPECT_NEAR(arr.angle_to({2, 2}), 45.0, 1e-9);
  EXPECT_NEAR(arr.angle_to({0, 1}), 180.0, 1e-9);
}

TEST(PhasedArray, NullCodebookThrows) {
  EXPECT_THROW(PhasedArray({0, 0}, 0.0, nullptr), std::invalid_argument);
}

TEST(PhasedArray, RotationShiftsBestBeam) {
  const Codebook cb;
  PhasedArray arr({0, 0}, 0.0, &cb);
  // Target straight ahead: beam 12 is best. After rotating the array +30
  // degrees, the target sits at -30 in the array frame: beam 6 is best.
  auto best_beam = [&](double world_angle) {
    BeamId best = 0;
    double best_gain = -1e9;
    for (BeamId b = 0; b < cb.size(); ++b) {
      const double g = arr.gain_dbi(b, world_angle);
      if (g > best_gain) {
        best_gain = g;
        best = b;
      }
    }
    return best;
  };
  EXPECT_EQ(best_beam(0.0), 12);
  arr.rotate(30.0);
  EXPECT_EQ(best_beam(0.0), 6);
}

}  // namespace
}  // namespace libra::array
