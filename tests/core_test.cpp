#include <gtest/gtest.h>

#include "core/classifier.h"
#include "core/cots_device.h"
#include "core/rate_adaptation.h"
#include "core/strategy.h"
#include "env/registry.h"
#include "test_helpers.h"

namespace libra::core {
namespace {

using libra::testing::make_record;
using libra::testing::make_trace;

// ---------- RA repair walk ----------

TEST(RaRepairWalk, DescendsToHighestWorking) {
  const trace::PairTrace t = make_trace(4);
  const RaWalk walk = ra_repair_walk(t, 7, {});
  EXPECT_EQ(walk.settled, 4);
  // Probes 7, 6, 5 fail; probe 4 is the first working one.
  EXPECT_EQ(walk.first_working_probe, 3);
  ASSERT_GE(walk.probes.size(), 4u);
  EXPECT_EQ(walk.probes[0], 7);
  EXPECT_EQ(walk.probes[3], 4);
}

TEST(RaRepairWalk, StartAtWorkingMcsIsImmediate) {
  const trace::PairTrace t = make_trace(6);
  const RaWalk walk = ra_repair_walk(t, 6, {});
  EXPECT_EQ(walk.settled, 6);
  EXPECT_EQ(walk.first_working_probe, 0);
}

TEST(RaRepairWalk, StopsDescendingAfterThroughputDrop) {
  // All MCSs work: the walk probes the start MCS and the one below (which
  // delivers less), then stops -- it does not scan to MCS 0.
  const trace::PairTrace t = make_trace(8);
  const RaWalk walk = ra_repair_walk(t, 8, {});
  EXPECT_EQ(walk.settled, 8);
  EXPECT_LE(walk.probes.size(), 2u);
}

TEST(RaRepairWalk, NothingWorks) {
  const trace::PairTrace t = make_trace(-1);
  const RaWalk walk = ra_repair_walk(t, 5, {});
  EXPECT_EQ(walk.settled, -1);
  EXPECT_EQ(walk.first_working_probe, -1);
  EXPECT_EQ(walk.probes.size(), 6u);  // probed 5..0
}

TEST(RaRepairWalk, FromMcsZero) {
  const trace::PairTrace t = make_trace(0);
  const RaWalk walk = ra_repair_walk(t, 0, {});
  EXPECT_EQ(walk.settled, 0);
  EXPECT_EQ(walk.probes.size(), 1u);
}

// ---------- UpProber ----------

TEST(UpProber, ClimbsToBestMcs) {
  const trace::PairTrace t = make_trace(6);
  UpProber prober(2);
  trace::GroundTruthConfig rule;
  // Enough frames for four climbs at T0 = 5.
  for (int i = 0; i < 60; ++i) prober.on_frame(t, rule);
  EXPECT_EQ(prober.current(), 6);
}

TEST(UpProber, DoesNotExceedWorkingCeiling) {
  const trace::PairTrace t = make_trace(4);
  UpProber prober(4);
  trace::GroundTruthConfig rule;
  for (int i = 0; i < 300; ++i) prober.on_frame(t, rule);
  EXPECT_EQ(prober.current(), 4);
}

TEST(UpProber, BacksOffExponentially) {
  const trace::PairTrace t = make_trace(4);
  UpProber prober(4);
  trace::GroundTruthConfig rule;
  // First failed probe happens at frame 5; with backoff the second probe
  // comes 10 frames later, the third 20 frames after that.
  std::vector<int> probe_frames;
  for (int i = 0; i < 120; ++i) {
    const phy::McsIndex m = prober.on_frame(t, rule);
    if (m == 5) probe_frames.push_back(i);
  }
  ASSERT_GE(probe_frames.size(), 3u);
  const int gap1 = probe_frames[1] - probe_frames[0];
  const int gap2 = probe_frames[2] - probe_frames[1];
  EXPECT_EQ(gap1, 10);
  EXPECT_EQ(gap2, 20);
}

TEST(UpProber, HoldsWhenCdrUnhealthy) {
  trace::PairTrace t = make_trace(6);
  t.cdr[4] = 0.5;  // current MCS lossy: never probe upward from here
  UpProber prober(4);
  trace::GroundTruthConfig rule;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(prober.on_frame(t, rule), 4);
  }
}

TEST(UpProber, AtMaxMcsStaysPut) {
  const trace::PairTrace t = make_trace(8);
  UpProber prober(8);
  trace::GroundTruthConfig rule;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(prober.on_frame(t, rule), 8);
  }
}

TEST(UpProber, ResetRestoresState) {
  const trace::PairTrace t = make_trace(8);
  UpProber prober(2);
  trace::GroundTruthConfig rule;
  for (int i = 0; i < 30; ++i) prober.on_frame(t, rule);
  prober.reset(1);
  EXPECT_EQ(prober.current(), 1);
}

// ---------- RRAA CDR_ORI threshold ----------

TEST(CdrOri, TighterAtBigRateJumps) {
  const phy::McsTable t;
  // MCS 1 -> 2 doubles the rate (385 -> 770): large tolerable loss, low
  // gate. MCS 5 -> 6 gains only 20%: tight gate.
  EXPECT_LT(cdr_ori(t, 1), cdr_ori(t, 5));
  for (phy::McsIndex m = 0; m < t.max_mcs(); ++m) {
    EXPECT_GT(cdr_ori(t, m), 0.5);
    EXPECT_LT(cdr_ori(t, m), 1.0);
  }
}

TEST(CdrOri, TopMcsNeverProbes) {
  const phy::McsTable t;
  EXPECT_DOUBLE_EQ(cdr_ori(t, t.max_mcs()), 1.0);
}

TEST(CdrOri, MatchesClosedForm) {
  const phy::McsTable t;
  // cdr_ori(m) = 1 - (1 - rate(m)/rate(m+1)) / 2.
  const double expected = 1.0 - (1.0 - 300.0 / 385.0) / 2.0;
  EXPECT_NEAR(cdr_ori(t, 0), expected, 1e-12);
}

TEST(UpProber, RraaGateUsedWhenTableSet) {
  const phy::McsTable table;
  trace::PairTrace t = make_trace(6);
  // The RRAA gate for the 1->2 jump (rate doubles) is 0.75 -- far looser
  // than the fixed 0.9 default. A CDR of 0.8 clears the RRAA gate but not
  // the fixed one; with the table set the prober must probe.
  t.cdr[1] = 0.80;
  UpProberConfig cfg;
  cfg.table = &table;
  UpProber prober(1, cfg);
  trace::GroundTruthConfig rule;
  bool probed = false;
  for (int i = 0; i < 10; ++i) probed |= prober.on_frame(t, rule) == 2;
  EXPECT_TRUE(probed);
}

// ---------- LiBRA classifier ----------

trace::Dataset tiny_dataset() {
  trace::Dataset ds;
  // Clearly separated synthetic cases: BA cases have big SNR drops, RA
  // cases have moderate drops with high initial MCS, NA cases are clean.
  for (int i = 0; i < 30; ++i) {
    trace::CaseRecord ba = make_record(4, -1, 4);
    ba.init_best.snr_db = 20.0;
    ba.new_at_init_pair.snr_db = 20.0 - 15.0 - (i % 5);
    ds.records.push_back(ba);

    trace::CaseRecord ra = make_record(8, 5, 5);
    ra.init_best.snr_db = 26.0;
    ra.new_at_init_pair.snr_db = 26.0 - 5.0 - 0.1 * (i % 7);
    ds.records.push_back(ra);

    trace::CaseRecord na = make_record(6, 6, 6);
    na.forced_na = true;
    na.init_best.snr_db = 22.0;
    na.new_at_init_pair.snr_db = 22.0 - 0.05 * (i % 3);
    ds.na_records.push_back(na);
  }
  return ds;
}

TEST(LibraClassifier, LearnsSyntheticClasses) {
  LibraClassifier clf;
  util::Rng rng(1);
  clf.train(tiny_dataset(), {}, rng);
  ASSERT_TRUE(clf.trained());

  trace::FeatureVector ba_features =
      trace::extract_features(tiny_dataset().records[0]);
  EXPECT_EQ(clf.classify(ba_features, rng), trace::Action::kBA);
}

TEST(LibraClassifier, ConfidenceGateDemotesUncertainVerdicts) {
  // An impossible gate (>1) demotes every adaptation verdict to NA.
  core::LibraClassifierConfig cfg;
  cfg.min_confidence = 1.01;
  LibraClassifier gated(cfg);
  util::Rng rng(2);
  gated.train(tiny_dataset(), {}, rng);
  const trace::FeatureVector ba_features =
      trace::extract_features(tiny_dataset().records[0]);
  EXPECT_EQ(gated.classify(ba_features, rng), trace::Action::kNA);

  // A permissive gate keeps confident verdicts.
  core::LibraClassifierConfig loose;
  loose.min_confidence = 0.4;
  LibraClassifier open(loose);
  open.train(tiny_dataset(), {}, rng);
  EXPECT_EQ(open.classify(ba_features, rng), trace::Action::kBA);
}

TEST(LibraClassifier, VoteFractionsSumToOne) {
  LibraClassifier clf;
  util::Rng rng(3);
  clf.train(tiny_dataset(), {}, rng);
  const trace::FeatureVector f =
      trace::extract_features(tiny_dataset().records[0]);
  const auto votes = clf.forest().vote_fractions(f.v);
  double sum = 0.0;
  for (double v : votes) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// The fleet-serving contract: a batched call over N rows, each jittered
// from its own stream, must return exactly what N serial classify() calls
// fed clones of those streams return.
TEST(LibraClassifier, ClassifyBatchBitIdenticalToSerial) {
  LibraClassifier clf;
  util::Rng train_rng(4);
  clf.train(tiny_dataset(), {}, train_rng);

  const trace::Dataset ds = tiny_dataset();
  std::vector<trace::FeatureVector> rows;
  for (const auto& rec : ds.records) rows.push_back(extract_features(rec));
  for (const auto& rec : ds.na_records) rows.push_back(extract_features(rec));

  std::vector<util::Rng> batch_streams, serial_streams;
  std::vector<util::Rng*> batch_ptrs;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    batch_streams.emplace_back(100 + i);
    serial_streams.emplace_back(100 + i);
  }
  for (util::Rng& s : batch_streams) batch_ptrs.push_back(&s);

  const std::vector<trace::Action> batched = clf.classify_batch(rows, batch_ptrs);
  ASSERT_EQ(batched.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batched[i], clf.classify(rows[i], serial_streams[i]))
        << "row " << i;
  }
  // The streams must have advanced identically too (same draw count).
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batch_streams[i].uniform(0, 1), serial_streams[i].uniform(0, 1))
        << "stream " << i;
  }
}

TEST(LibraClassifier, ClassifyBatchHonorsConfidenceGatePerRow) {
  core::LibraClassifierConfig cfg;
  cfg.min_confidence = 1.01;  // impossible: every adaptation demoted to NA
  LibraClassifier gated(cfg);
  util::Rng rng(5);
  gated.train(tiny_dataset(), {}, rng);

  const trace::FeatureVector ba =
      trace::extract_features(tiny_dataset().records[0]);
  std::vector<trace::FeatureVector> rows(3, ba);
  std::vector<util::Rng> streams;
  std::vector<util::Rng*> ptrs;
  for (int i = 0; i < 3; ++i) streams.emplace_back(200 + i);
  for (util::Rng& s : streams) ptrs.push_back(&s);
  for (const trace::Action a : gated.classify_batch(rows, ptrs)) {
    EXPECT_EQ(a, trace::Action::kNA);
  }
}

TEST(LibraClassifier, ClassifyBatchValidatesInputs) {
  LibraClassifier clf;
  util::Rng rng(6);
  std::vector<trace::FeatureVector> rows(2);
  std::vector<util::Rng> streams;
  streams.emplace_back(1);
  std::vector<util::Rng*> one_ptr{&streams[0]};
  // Untrained first.
  EXPECT_THROW(clf.classify_batch(rows, one_ptr), std::logic_error);
  clf.train(tiny_dataset(), {}, rng);
  // Two rows, one stream.
  EXPECT_THROW(clf.classify_batch(rows, one_ptr), std::invalid_argument);
  // Null stream.
  std::vector<util::Rng*> with_null{&streams[0], nullptr};
  EXPECT_THROW(clf.classify_batch(rows, with_null), std::invalid_argument);
}

TEST(LibraClassifier, UntrainedThrows) {
  LibraClassifier clf;
  util::Rng rng(1);
  EXPECT_THROW(clf.classify({}, rng), std::logic_error);
  trace::Dataset empty;
  EXPECT_THROW(clf.train(empty, {}, rng), std::invalid_argument);
}

TEST(LibraClassifier, NoAckRuleLowMcsAlwaysBa) {
  const LibraClassifier clf;
  for (phy::McsIndex m = 0; m < 6; ++m) {
    EXPECT_EQ(clf.no_ack_action(m, 0.5), trace::Action::kBA);
    EXPECT_EQ(clf.no_ack_action(m, 250.0), trace::Action::kBA);
  }
}

TEST(LibraClassifier, NoAckRuleHighMcsFollowsOverhead) {
  const LibraClassifier clf;
  EXPECT_EQ(clf.no_ack_action(7, 0.5), trace::Action::kBA);
  EXPECT_EQ(clf.no_ack_action(7, 5.0), trace::Action::kBA);
  EXPECT_EQ(clf.no_ack_action(7, 150.0), trace::Action::kRA);
  EXPECT_EQ(clf.no_ack_action(7, 250.0), trace::Action::kRA);
}

TEST(LibraClassifier, LabelRoundTrip) {
  for (trace::Action a :
       {trace::Action::kBA, trace::Action::kRA, trace::Action::kNA}) {
    EXPECT_EQ(LibraClassifier::to_action(LibraClassifier::to_label(a)), a);
  }
}

// An out-of-enum Action (a corrupted trace row, a cast from a raw int) must
// throw, not silently train as label 0 == Beam Adaptation.
TEST(LibraClassifier, OutOfEnumActionThrows) {
  EXPECT_THROW(LibraClassifier::to_label(static_cast<trace::Action>(42)),
               std::invalid_argument);
  EXPECT_THROW(LibraClassifier::to_label(static_cast<trace::Action>(-1)),
               std::invalid_argument);
}

// ---------- strategies ----------

TEST(Strategy, Names) {
  EXPECT_EQ(to_string(Strategy::kLibra), "LiBRA");
  EXPECT_EQ(to_string(Strategy::kRaFirst), "RA First");
  EXPECT_EQ(to_string(Strategy::kBaFirst), "BA First");
  EXPECT_EQ(to_string(Strategy::kOracleData), "Oracle-Data");
  EXPECT_EQ(to_string(Strategy::kOracleDelay), "Oracle-Delay");
  EXPECT_EQ(std::size(kAllStrategies), 5u);
}

// ---------- COTS device ----------

struct CotsFixture : ::testing::Test {
  CotsFixture()
      : em(&table),
        environment("box", env::rectangle_walls(20, 10, 8, 8, 8, 8)),
        tx({2, 5}, 0.0, &codebook),
        rx({10, 5}, 180.0, &codebook),
        link(&environment, &tx, &rx, budget()) {}

  static channel::LinkBudgetConfig budget() {
    channel::LinkBudgetConfig cfg;
    cfg.tx_power_dbm = 13.0;  // COTS-grade EIRP
    return cfg;
  }

  phy::McsTable table;
  phy::ErrorModel em;
  array::Codebook codebook;
  env::Environment environment;
  array::PhasedArray tx;
  array::PhasedArray rx;
  channel::Link link;
};

TEST_F(CotsFixture, AssociationPicksReasonableSector) {
  CotsDevice device(&link, &em);
  util::Rng rng(1);
  device.associate(rng);
  // The Rx sits straight ahead: the chosen sector steers near 0 degrees.
  const double steer =
      codebook.beam(device.tx_sector()).steering_deg();
  EXPECT_LT(std::abs(steer), 15.0);
}

TEST_F(CotsFixture, HealthyLinkDelivers) {
  CotsDevice device(&link, &em);
  util::Rng rng(2);
  device.associate(rng);
  double tput = 0.0;
  for (int i = 0; i < 300; ++i) tput += device.step(rng).throughput_mbps;
  EXPECT_GT(tput / 300, 500.0);
}

TEST_F(CotsFixture, BlockageTriggersAdaptation) {
  CotsDeviceConfig cfg;
  cfg.ba_after_ack_losses = 2;
  CotsDevice device(&link, &em, cfg);
  util::Rng rng(3);
  device.associate(rng);
  for (int i = 0; i < 50; ++i) device.step(rng);
  const phy::McsIndex before = device.mcs();
  environment.add_blocker({{6, 5}, 0.3, 35.0});
  int ba_triggers = 0;
  for (int i = 0; i < 200; ++i) ba_triggers += device.step(rng).ba_triggered;
  EXPECT_GT(ba_triggers, 0);
  EXPECT_LE(device.mcs(), before);
}

TEST_F(CotsFixture, LockedSectorNeverSweeps) {
  CotsDevice device(&link, &em);
  util::Rng rng(4);
  device.lock_sector(12);
  environment.add_blocker({{6, 5}, 0.3, 35.0});
  for (int i = 0; i < 300; ++i) {
    const auto log = device.step(rng);
    EXPECT_FALSE(log.ba_triggered);
    EXPECT_EQ(log.tx_sector, 12);
  }
}

TEST_F(CotsFixture, TimeAdvancesPerFrame) {
  CotsDevice device(&link, &em);
  util::Rng rng(5);
  device.lock_sector(12);
  const double t0 = device.time_ms();
  device.step(rng);
  EXPECT_NEAR(device.time_ms() - t0, 10.0, 1e-9);
}

TEST_F(CotsFixture, NullDependenciesThrow) {
  EXPECT_THROW(CotsDevice(nullptr, &em), std::invalid_argument);
  EXPECT_THROW(CotsDevice(&link, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace libra::core
