#include <gtest/gtest.h>

#include "env/environment.h"
#include "env/registry.h"

namespace libra::env {
namespace {

Environment box() {
  return Environment("box", rectangle_walls(10, 5, 8, 8, 8, 8));
}

TEST(Environment, RectangleWallsFormClosedLoop) {
  const auto walls = rectangle_walls(10, 5, 1, 2, 3, 4);
  ASSERT_EQ(walls.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& cur = walls[i];
    const auto& next = walls[(i + 1) % 4];
    EXPECT_DOUBLE_EQ(cur.seg.b.x, next.seg.a.x);
    EXPECT_DOUBLE_EQ(cur.seg.b.y, next.seg.a.y);
  }
  EXPECT_DOUBLE_EQ(walls[0].reflection_loss_db, 1);
  EXPECT_DOUBLE_EQ(walls[2].reflection_loss_db, 3);
}

TEST(Environment, InteriorSegmentNotObstructed) {
  const Environment e = box();
  EXPECT_FALSE(e.wall_obstructs({1, 1}, {9, 4}));
}

TEST(Environment, SegmentThroughWallObstructed) {
  const Environment e = box();
  EXPECT_TRUE(e.wall_obstructs({5, 2}, {5, 8}));   // exits through the top
  EXPECT_TRUE(e.wall_obstructs({-2, 2}, {12, 2})); // crosses both sides
}

TEST(Environment, InteriorObstacleBlocks) {
  auto walls = rectangle_walls(10, 5, 8, 8, 8, 8);
  walls.push_back({{{4, 1}, {4, 4}}, 4.0, "cabinet"});
  const Environment e("lab-ish", std::move(walls));
  EXPECT_TRUE(e.wall_obstructs({1, 2}, {9, 2}));
  EXPECT_FALSE(e.wall_obstructs({1, 4.5}, {9, 4.5}));
}

TEST(Blocker, CenteredHitFullAttenuation) {
  Environment e = box();
  e.add_blocker({{5, 2}, 0.25, 28.0});
  EXPECT_NEAR(e.blockage_loss_db({1, 2}, {9, 2}), 28.0, 1e-9);
}

TEST(Blocker, GrazingHitPartialAttenuation) {
  Environment e = box();
  e.add_blocker({{5, 2.2}, 0.25, 28.0});
  const double loss = e.blockage_loss_db({1, 2}, {9, 2});
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 28.0 * 0.3);
}

TEST(Blocker, MissedEntirely) {
  Environment e = box();
  e.add_blocker({{5, 3.5}, 0.25, 28.0});
  EXPECT_DOUBLE_EQ(e.blockage_loss_db({1, 2}, {9, 2}), 0.0);
}

TEST(Blocker, MultipleBlockersAccumulate) {
  Environment e = box();
  e.add_blocker({{3, 2}, 0.25, 10.0});
  e.add_blocker({{7, 2}, 0.25, 15.0});
  EXPECT_NEAR(e.blockage_loss_db({1, 2}, {9, 2}), 25.0, 1e-9);
}

TEST(Blocker, ClearBlockersResets) {
  Environment e = box();
  e.add_blocker({{5, 2}, 0.25, 28.0});
  e.clear_blockers();
  EXPECT_DOUBLE_EQ(e.blockage_loss_db({1, 2}, {9, 2}), 0.0);
  EXPECT_TRUE(e.blockers().empty());
}

TEST(Environment, BoundingBox) {
  const Environment e = box();
  const auto bb = e.bounding_box();
  EXPECT_DOUBLE_EQ(bb.min.x, 0);
  EXPECT_DOUBLE_EQ(bb.min.y, 0);
  EXPECT_DOUBLE_EQ(bb.max.x, 10);
  EXPECT_DOUBLE_EQ(bb.max.y, 5);
}

TEST(Environment, ClampInside) {
  const Environment e = box();
  const auto p = e.clamp_inside({20, -5}, 0.5);
  EXPECT_DOUBLE_EQ(p.x, 9.5);
  EXPECT_DOUBLE_EQ(p.y, 0.5);
  const auto q = e.clamp_inside({5, 2}, 0.5);
  EXPECT_DOUBLE_EQ(q.x, 5);
  EXPECT_DOUBLE_EQ(q.y, 2);
}

TEST(Registry, TrainingEnvironmentsMatchTable1) {
  const auto envs = training_environments();
  ASSERT_EQ(envs.size(), 6u);  // lobby, lab, conference, 3 corridors
  EXPECT_EQ(envs[0].name(), "lobby");
  EXPECT_EQ(envs[1].name(), "lab");
  EXPECT_EQ(envs[2].name(), "conference_room");
}

TEST(Registry, TestingEnvironmentsMatchTable2) {
  const auto envs = testing_environments();
  ASSERT_EQ(envs.size(), 2u);
  EXPECT_EQ(envs[0].name(), "building1_corridor");
  EXPECT_EQ(envs[1].name(), "building2_open_area");
}

TEST(Registry, LobbyHasPillars) {
  const Environment lobby = make_lobby();
  EXPECT_GT(lobby.walls().size(), 4u);
}

TEST(Registry, LabCabinetsBlockCrossRoomPath) {
  const Environment lab = make_lab();
  // The cabinet row at y=6.4 blocks a straight path crossing it.
  EXPECT_TRUE(lab.wall_obstructs({5, 5}, {5, 8}));
}

TEST(Registry, CorridorDimensions) {
  const Environment narrow = make_corridor(1.74);
  const auto bb = narrow.bounding_box();
  EXPECT_NEAR(bb.max.y - bb.min.y, 1.74, 1e-9);
  EXPECT_NEAR(bb.max.x - bb.min.x, 30.0, 1e-9);
}

TEST(Registry, Building1WallsAreLossier) {
  // Old construction: per-bounce loss higher than the main building's
  // drywall, which is what degrades cross-building model accuracy.
  const Environment b1 = make_building1_corridor();
  const Environment corr = make_corridor(3.2);
  EXPECT_GT(b1.walls()[0].reflection_loss_db,
            corr.walls()[0].reflection_loss_db);
}

}  // namespace
}  // namespace libra::env
