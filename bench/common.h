// Shared harness code for the per-figure/table reproduction binaries.
//
// Every bench binary regenerates one piece of the paper's evaluation and
// prints the series/rows in a stable plain-text format, with the paper's
// reported values alongside where applicable.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "phy/error_model.h"
#include "trace/dataset.h"
#include "util/stats.h"
#include "util/table.h"

namespace libra::bench {

struct Workbench {
  phy::McsTable mcs_table;
  std::unique_ptr<phy::ErrorModel> error_model;
  trace::Dataset training;
  trace::Dataset testing;

  static Workbench collect(bool with_na = true, std::uint64_t seed = 1) {
    Workbench wb;
    wb.error_model = std::make_unique<phy::ErrorModel>(&wb.mcs_table);
    trace::CollectOptions opt;
    opt.seed = seed;
    opt.with_na_augmentation = with_na;
    wb.training = trace::collect_dataset(trace::training_scenarios(),
                                         *wb.error_model, opt);
    opt.seed = seed + 76;
    wb.testing = trace::collect_dataset(trace::testing_scenarios(),
                                        *wb.error_model, opt);
    return wb;
  }
};

// Print a CDF as a fixed set of quantiles -- the shape summary used to
// compare against the paper's figure curves.
inline void print_cdf_row(util::Table& table, const std::string& label,
                          std::vector<double> samples, int precision = 2) {
  if (samples.empty()) {
    table.add_row({label, "-", "-", "-", "-", "-", "-"});
    return;
  }
  util::EmpiricalCdf cdf(std::move(samples));
  table.add_row({label,
                 std::to_string(cdf.size()),
                 util::format_double(cdf.quantile(0.10), precision),
                 util::format_double(cdf.quantile(0.25), precision),
                 util::format_double(cdf.quantile(0.50), precision),
                 util::format_double(cdf.quantile(0.75), precision),
                 util::format_double(cdf.quantile(0.90), precision)});
}

inline util::Table cdf_table(const std::string& first_col) {
  return util::Table({first_col, "n", "p10", "p25", "p50", "p75", "p90"});
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace libra::bench
