// Sec. 8.1's BA-overhead derivation, from first principles.
//
// The evaluation sweeps BA overheads {0.5, 5, 150, 250} ms. The first two
// come from the O(N) quasi-omni sector sweep with 30-degree and 3-degree
// beams (Eqn. 2 of [24]); the last two approximate the O(N^2) directional
// search with 9/7-degree beams (Fig. 11 of [56]). This bench computes all
// four from the 802.11ad SSW frame timing and prints the A-BFT contention
// penalty that dense deployments add on top.
#include <cstdio>

#include "mac/beacon_interval.h"
#include "util/table.h"

using namespace libra;

int main() {
  std::printf("BA overhead from 802.11ad SSW timing (Sec. 8.1)\n\n");
  const mac::SswTiming timing;

  util::Table t({"beamwidth", "sectors (360deg)", "algorithm",
                 "derived overhead (ms)", "paper value (ms)"});
  struct Row {
    double beamwidth;
    bool exhaustive;
    const char* paper;
  };
  const Row rows[] = {
      {30.0, false, "0.5"},
      {3.0, false, "5"},
      {9.0, true, "150"},
      {7.0, true, "250"},
  };
  // The O(N^2) values in the paper come from Fig. 11 of [56], whose
  // measurement platform spends ~90 us per beam pair (sounding packet +
  // array retuning), much more than an 802.11ad SSW frame.
  constexpr double kPerPairUs56 = 90.0;
  for (const Row& row : rows) {
    const int sectors = mac::sectors_for_beamwidth(360.0, row.beamwidth);
    const double ms =
        row.exhaustive
            ? static_cast<double>(sectors) * sectors * kPerPairUs56 / 1000.0
            : mac::full_sls_duration_ms(sectors, sectors, timing);
    char bw[32];
    std::snprintf(bw, sizeof(bw), "%.0f deg", row.beamwidth);
    t.add_row({bw, std::to_string(sectors),
               row.exhaustive ? "O(N^2) directional [56]"
                              : "O(N) SLS both sides",
               util::format_double(ms, 2), row.paper});
  }
  std::printf("%s", t.to_string().c_str());

  std::printf("\nA-BFT contention (dense deployments, Sec. 8.2 outlook):\n");
  util::Table c({"contending stations", "expected BIs to train",
                 "expected wait (ms)"});
  const mac::BeaconIntervalConfig bi;
  for (int n : {1, 2, 4, 8, 12}) {
    const double bis = mac::expected_abft_intervals(n, bi);
    c.add_row({std::to_string(n), util::format_double(bis, 2),
               util::format_double(bis * bi.bi_ms, 0)});
  }
  std::printf("%s", c.to_string().c_str());
  std::printf(
      "\nshape: the O(N) overheads land at sub-ms to a few ms; the O(N^2)\n"
      "directional search with narrow beams lands at 10s-100s of ms --\n"
      "exactly the regimes the paper evaluates, and the reason 'BA First'\n"
      "stops being viable as arrays grow (Sec. 8.2 conclusion).\n");
  return 0;
}
