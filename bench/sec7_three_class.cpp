// Sec. 7 design experiments:
//
//   1. 3-class RF (BA / RA / NA) on the NA-augmented datasets: paper reports
//      98% 5-fold CV accuracy and 94% on the testing dataset.
//   2. Observation-window length: retraining on short (40 ms) windows costs
//      about 3 accuracy points (paper).
//   3. The missing-ACK rule: with the current MCS below 6, BA is the right
//      mechanism 92% of the time; at MCS >= 6 the split is 48/52.
#include <cstdio>
#include <memory>

#include "common.h"
#include "core/classifier.h"
#include "ml/cross_validation.h"
#include "ml/random_forest.h"
#include "util/thread_pool.h"

using namespace libra;

namespace {

ml::DataSet to_dataset3(const std::vector<trace::LabeledEntry>& entries) {
  ml::DataSet d(trace::FeatureVector::kDim);
  for (const auto& e : entries) {
    d.add(e.x.v, core::LibraClassifier::to_label(e.y));
  }
  return d;
}

void run_pair(const char* label, const trace::Dataset& train,
              const trace::Dataset& test, const trace::GroundTruthConfig& gt,
              util::Rng& rng, util::ThreadPool& pool, util::Table& t,
              const char* paper) {
  const ml::DataSet dtr = to_dataset3(train.labeled3(gt));
  const ml::DataSet dte = to_dataset3(test.labeled3(gt));
  const ml::ClassifierFactory rf = [] {
    return std::make_unique<ml::RandomForest>();
  };
  const ml::CvResult cv = ml::cross_validate(dtr, rf, 5, 10, rng, &pool);
  const ml::CvResult xb = ml::train_test(dtr, dte, rf, rng);
  t.add_row({label, std::to_string(dtr.size()),
             util::format_double(100 * cv.accuracy, 1),
             util::format_double(100 * xb.accuracy, 1), paper});
}

}  // namespace

int main() {
  std::printf("Sec. 7: 3-class model, observation window, missing-ACK rule\n");
  trace::GroundTruthConfig gt;

  phy::McsTable table;
  phy::ErrorModel em(&table);

  // Long (1 s) observation windows, as collected for Sec. 6.
  auto wb = bench::Workbench::collect(/*with_na=*/true);

  bench::heading("3-class RF accuracy (BA / RA / NA) vs observation window");
  util::Table t({"window", "train entries", "5-fold CV acc", "x-bldg acc",
                 "paper"});
  util::Rng rng(7);
  util::ThreadPool pool;  // shared across every CV sweep below
  run_pair("1 s traces", wb.training, wb.testing, gt, rng, pool, t, "98 / 94");
  // Shorter observation windows average fewer frames, so every metric is
  // sqrt(100/frames) times noisier. The paper reports the 40 ms point
  // (~3 points lower); we sweep the whole range.
  for (int frames : {10, 4, 2}) {
    trace::CollectOptions short_opt;
    short_opt.collector.frames_per_trace = frames;
    short_opt.with_na_augmentation = true;
    auto train_w =
        trace::collect_dataset(trace::training_scenarios(), em, short_opt);
    short_opt.seed = 77;
    auto test_w =
        trace::collect_dataset(trace::testing_scenarios(), em, short_opt);
    char label[48];
    std::snprintf(label, sizeof(label), "%d ms windows", frames * 10);
    run_pair(label, train_w, test_w, gt, rng, pool, t,
             frames == 4 ? "~3 pts lower" : "-");
  }
  std::printf("%s", t.to_string().c_str());

  // --- Missing-ACK rule statistics (training dataset, 2-class labels). ---
  bench::heading("missing-ACK rule: P(BA is right | current MCS)");
  int low_ba = 0, low_n = 0, high_ba = 0, high_n = 0;
  for (const auto& e : wb.training.labeled(gt)) {
    const bool ba = e.y == trace::Action::kBA;
    if (e.x.initial_mcs() < 6) {
      ++low_n;
      low_ba += ba;
    } else {
      ++high_n;
      high_ba += ba;
    }
  }
  util::Table r({"current MCS", "cases", "BA right", "paper"});
  r.add_row({"< 6", std::to_string(low_n),
             util::format_double(100.0 * low_ba / std::max(low_n, 1), 0) + "%",
             "92%"});
  r.add_row({">= 6", std::to_string(high_n),
             util::format_double(100.0 * high_ba / std::max(high_n, 1), 0) +
                 "%",
             "48%"});
  std::printf("%s", r.to_string().c_str());
  std::printf(
      "LiBRA rule: MCS<6 -> BA always; MCS>=6 -> BA first iff the BA\n"
      "overhead is low (a few ms), RA first otherwise.\n");
  return 0;
}
