// Sec. 6.2 + Table 3: ML model comparison and Gini importance.
//
//   - stratified 5-fold cross validation (repeated with random splits) of
//     DT, RF, SVM and DNN on the training dataset (paper: 95/98/91/95%
//     accuracy);
//   - train on the main dataset, test on the Buildings-1/2 dataset
//     (paper: 85/88/88/83%);
//   - Gini importance of each metric from the RF (Table 3).
#include <cstdio>
#include <memory>

#include "common.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"
#include "ml/svm.h"
#include "util/thread_pool.h"

using namespace libra;

namespace {

ml::DataSet to_dataset(const std::vector<trace::LabeledEntry>& entries) {
  ml::DataSet d(trace::FeatureVector::kDim);
  for (const auto& e : entries) {
    d.add(e.x.v, e.y == trace::Action::kBA ? 0 : 1);
  }
  return d;
}

}  // namespace

int main() {
  std::printf("Sec. 6.2 / Table 3: ML-based link adaptation\n");
  auto wb = bench::Workbench::collect(/*with_na=*/false);
  trace::GroundTruthConfig gt;
  const ml::DataSet train = to_dataset(wb.training.labeled(gt));
  const ml::DataSet test = to_dataset(wb.testing.labeled(gt));
  std::printf("train: %zu entries, test: %zu entries\n", train.size(),
              test.size());

  struct ModelRow {
    const char* name;
    ml::ClassifierFactory factory;
    const char* paper_cv;
    const char* paper_xb;
  };
  const ModelRow models[] = {
      {"DT (gini, depth<=8)",
       [] { return std::make_unique<ml::DecisionTree>(); }, "95/95", "85/85"},
      {"DT (entropy)",
       [] {
         ml::DecisionTreeConfig c;
         c.impurity = ml::Impurity::kEntropy;
         return std::make_unique<ml::DecisionTree>(c);
       },
       "95/95", "85/85"},
      {"RF (60 trees)", [] { return std::make_unique<ml::RandomForest>(); },
       "98/98", "88/88"},
      {"SVM (RBF)", [] { return std::make_unique<ml::Svm>(); }, "91/91",
       "88/88"},
      {"SVM (linear)",
       [] {
         ml::SvmConfig c;
         c.kernel = ml::Kernel::kLinear;
         return std::make_unique<ml::Svm>(c);
       },
       "91/91", "88/88"},
      {"DNN (4 dense layers)",
       [] { return std::make_unique<ml::NeuralNet>(); }, "95/90", "83/76"},
  };

  bench::heading("5-fold CV (20 random splits) and cross-building accuracy");
  util::Table t({"model", "CV acc", "CV F1", "x-bldg acc", "x-bldg F1",
                 "paper CV", "paper x-bldg"});
  util::Rng rng(42);
  util::ThreadPool pool;  // hardware_concurrency workers for the CV grid
  std::printf("CV pool: %d threads\n", pool.num_threads());
  for (const ModelRow& m : models) {
    const ml::CvResult cv =
        ml::cross_validate(train, m.factory, 5, 20, rng, &pool);
    const ml::CvResult xb = ml::train_test(train, test, m.factory, rng);
    t.add_row({m.name, util::format_double(100 * cv.accuracy, 1),
               util::format_double(100 * cv.weighted_f1, 1),
               util::format_double(100 * xb.accuracy, 1),
               util::format_double(100 * xb.weighted_f1, 1), m.paper_cv,
               m.paper_xb});
  }
  std::printf("%s", t.to_string().c_str());

  bench::heading("Table 3: Gini importance (RF fit on the testing dataset)");
  ml::RandomForest rf;
  rf.fit(test, rng);
  const double paper[] = {0.215, 0.08, 0.16, 0.06, 0.12, 0.125, 0.26};
  util::Table g({"metric", "importance", "paper"});
  for (int i = 0; i < trace::FeatureVector::kDim; ++i) {
    g.add_row({std::string(trace::FeatureVector::kNames[(std::size_t)i]),
               util::format_double(rf.feature_importances()[(std::size_t)i], 3),
               util::format_double(paper[i], 3)});
  }
  std::printf("%s", g.to_string().c_str());
  std::printf(
      "paper note: no metric dominates -- all contribute, hence a learned\n"
      "combination beats any single-metric heuristic.\n");
  return 0;
}
