// Table 4 (Sec. 8.4): 8K VR at 60 FPS over mobility timelines.
//
// The VR stream demands ~1.2 Gbps; trace throughputs are scaled down to
// what COTS 802.11ad achieves (<= 2.4 Gbps), and only mobility scenarios
// are used (nobody blocks or jams a VR player mid-game). Reports the
// average stall duration and the average number of stalls per timeline for
// every algorithm including both oracles.
//
// Paper shape: LiBRA suffers far fewer stalls than both heuristics at
// similar or better stall durations; neither oracle is optimal on both
// metrics at once (conflicting throughput/delay requirements).
#include <cstdio>

#include "common.h"
#include "mac/timing.h"
#include "sim/timeline.h"
#include "sim/vr.h"

using namespace libra;

int main() {
  std::printf("Table 4: VR stall duration (ms) / number of stalls\n");
  auto wb = bench::Workbench::collect(/*with_na=*/true);
  constexpr int kTimelines = 50;
  const sim::VrConfig vr_cfg;

  // A VR player stays within a few meters of the AP: keep only mobility
  // cases whose link can sustain the stream when adapted correctly
  // (settled throughput above the demand after COTS scaling), so stalls
  // measure *adaptation* quality, not raw capacity.
  const double min_tput =
      vr_cfg.bitrate_mbps / vr_cfg.cots_scale * 1.15;
  sim::RecordPools pools;
  for (const trace::CaseRecord& rec : wb.testing.records) {
    if (rec.impairment != trace::Impairment::kDisplacement) continue;
    const double best_after = *std::max_element(
        rec.new_best.throughput_mbps.begin(),
        rec.new_best.throughput_mbps.end());
    if (best_after >= min_tput) pools.displacement.push_back(&rec);
  }
  std::printf("VR-capable mobility cases: %zu of %zu\n",
              pools.displacement.size(), wb.testing.records.size());

  util::Table t({"BA overhead, FAT", "BA First", "RA First", "LiBRA",
                 "Oracle-Data", "Oracle-Delay"});
  for (double ba : {0.5, 250.0}) {
    for (double fat : mac::kFatsMs) {
      trace::GroundTruthConfig gt;
      gt.alpha = mac::alpha_for_ba_overhead(ba);
      gt.fat_ms = fat;
      gt.ba_overhead_ms = ba;

      util::Rng rng(99);
      core::LibraClassifier classifier;
      classifier.train(wb.training, gt, rng);
      const sim::EventSimulator simulator(&classifier);
      sim::EventParams params;
      params.fat_ms = fat;
      params.ba_overhead_ms = ba;
      params.rule = gt;

      std::vector<std::string> row;
      char label[64];
      std::snprintf(label, sizeof(label), "%.1f ms, %.0f ms", ba, fat);
      row.push_back(label);
      for (core::Strategy s : core::kAllStrategies) {
        double stall_ms_sum = 0.0;
        double stalls_sum = 0.0;
        for (int i = 0; i < kTimelines; ++i) {
          util::Rng tl_rng(5000 + i);
          const auto timeline = sim::make_timeline(
              sim::ScenarioType::kMotion, pools, {}, tl_rng);
          util::Rng run_rng(6000 + i);
          const auto r = sim::run_timeline(timeline, s, simulator, params,
                                           run_rng, /*record_series=*/true);
          double duration_ms = 0.0;
          for (const auto& [tput, dur] : r.tput_segments) duration_ms += dur;
          util::Rng vr_rng(7000 + i);
          const auto frames =
              sim::generate_frame_sizes_mb(vr_cfg, duration_ms, vr_rng);
          const auto vr = sim::play_vr(frames, r.tput_segments, vr_cfg);
          stall_ms_sum += vr.avg_stall_ms;
          stalls_sum += vr.stalls;
        }
        char cell[64];
        std::snprintf(cell, sizeof(cell), "%.1f / %.1f",
                      stall_ms_sum / kTimelines, stalls_sum / kTimelines);
        row.push_back(cell);
      }
      t.add_row(std::move(row));
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\npaper (0.5ms/2ms row): BA First 16/46.4, RA First 16/97.5, LiBRA\n"
      "16/0.1, Oracle-Data 0/0, Oracle-Delay 16/46.5 -- LiBRA has by far\n"
      "the fewest stalls; the oracles each optimize only one metric.\n");
  return 0;
}
