// Extension: why the dataset's interferers behave as hidden terminals.
//
// For every interference case in the campaign, check whether the interferer
// could carrier-sense the victim AP (victim beaming at its own client, the
// interferer listening quasi-omni). Directional deafness is what lets a
// CSMA neighbor transmit over the victim -- and the fraction of deaf
// placements, times the offered load, reproduces the burst duty cycles the
// dataset calibrates (20/50/80%).
#include <cstdio>

#include "common.h"
#include "env/registry.h"
#include "mac/csma.h"

using namespace libra;

int main() {
  std::printf("Hidden-terminal analysis of the campaign's interferers\n\n");
  const array::Codebook codebook;
  const mac::CsmaConfig csma;
  trace::ScenarioSet set = trace::training_scenarios();

  int total = 0, hidden = 0;
  util::Table t({"environment", "cases", "deaf (hidden)", "sensed"});
  std::map<std::string, std::pair<int, int>> per_env;  // hidden, total
  for (const trace::Case& c : set.cases) {
    if (c.impairment != trace::Impairment::kInterference) continue;
    if (!c.next.interferer_position) continue;
    auto& environment = set.environments[(std::size_t)c.env_index];
    // Victim AP beams at its client; the interferer listens quasi-omni.
    array::PhasedArray victim_tx(c.tx.position, c.tx.boresight_deg, &codebook);
    array::PhasedArray interferer(*c.next.interferer_position, 0.0, &codebook);
    channel::Link towards(&environment, &victim_tx, &interferer);
    const array::BeamId victim_beam = codebook.nearest_beam(
        geom::wrap_angle_deg((c.next.rx.position - c.tx.position).angle_deg() -
                             c.tx.boresight_deg));
    const bool senses =
        mac::can_sense(towards, victim_beam, array::kQuasiOmni, csma);
    ++total;
    hidden += !senses;
    auto& [h, n] = per_env[c.env_name];
    h += !senses;
    ++n;
  }
  for (const auto& [env_name, counts] : per_env) {
    t.add_row({env_name, std::to_string(counts.second),
               std::to_string(counts.first),
               std::to_string(counts.second - counts.first)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\noverall: %d of %d interferer placements are deaf to the "
              "victim (%.0f%%)\n",
              hidden, total, 100.0 * hidden / total);

  std::printf("\nimplied interference duty for a deaf CSMA interferer:\n");
  util::Table d({"offered load", "duty (burst fraction)",
                 "dataset level (target drop)"});
  const std::pair<double, const char*> loads[] = {
      {0.2, "low (20%)"}, {0.5, "medium (50%)"}, {0.8, "high (80%)"}};
  for (const auto& [load, label] : loads) {
    d.add_row({util::format_double(load, 1),
               util::format_double(mac::unthrottled_duty(load, csma), 3),
               label});
  }
  std::printf("%s", d.to_string().c_str());
  std::printf(
      "\nshape: open spaces (lobby) are deafness-prone -- the beamed victim\n"
      "is inaudible off its main lobe -- while narrow corridors keep\n"
      "everyone within sensing range via reflections. A deaf interferer\n"
      "transmits obliviously: its burst duty equals its offered load, which\n"
      "is exactly how the dataset's three interference levels are\n"
      "calibrated (Sec. 4.2).\n");
  return 0;
}
