// Design-choice ablations (DESIGN.md):
//
//   A. Feature ablation: retrain the RF with each PHY metric removed --
//      quantifies how much each metric contributes beyond Gini importance.
//   B. Forest size: accuracy vs number of trees (cost of the deployed model).
//   C. Missing-ACK fallback: LiBRA's distilled rule vs always-BA vs
//      always-RA fallbacks, measured as bytes-gap vs Oracle-Data.
//   D. Utility weight alpha: how the BA/RA ground-truth split moves as the
//      operator shifts weight from throughput to recovery delay.
#include <cstdio>
#include <memory>

#include "common.h"
#include "ml/cross_validation.h"
#include "ml/random_forest.h"
#include "sim/event_sim.h"

using namespace libra;

namespace {

ml::DataSet to_dataset(const std::vector<trace::LabeledEntry>& entries,
                       int drop_feature) {
  const int dim = trace::FeatureVector::kDim - (drop_feature >= 0 ? 1 : 0);
  ml::DataSet d(static_cast<std::size_t>(dim));
  std::vector<double> row;
  for (const auto& e : entries) {
    row.clear();
    for (int f = 0; f < trace::FeatureVector::kDim; ++f) {
      if (f == drop_feature) continue;
      row.push_back(e.x.v[static_cast<std::size_t>(f)]);
    }
    d.add(row, e.y == trace::Action::kBA ? 0 : 1);
  }
  return d;
}

}  // namespace

int main() {
  std::printf("Design ablations\n");
  auto wb = bench::Workbench::collect(/*with_na=*/true);
  trace::GroundTruthConfig gt;
  const auto train_entries = wb.training.labeled(gt);
  const auto test_entries = wb.testing.labeled(gt);
  util::Rng rng(31);
  const ml::ClassifierFactory rf_factory = [] {
    return std::make_unique<ml::RandomForest>();
  };

  // --- A. Feature ablation ---
  bench::heading("A. RF accuracy with one metric removed");
  {
    util::Table t({"removed metric", "CV acc", "x-bldg acc"});
    for (int drop = -1; drop < trace::FeatureVector::kDim; ++drop) {
      const ml::DataSet dtr = to_dataset(train_entries, drop);
      const ml::DataSet dte = to_dataset(test_entries, drop);
      const auto cv = ml::cross_validate(dtr, rf_factory, 5, 5, rng);
      const auto xb = ml::train_test(dtr, dte, rf_factory, rng);
      const std::string name =
          drop < 0 ? "(none)"
                   : std::string(
                         trace::FeatureVector::kNames[(std::size_t)drop]);
      t.add_row({name, util::format_double(100 * cv.accuracy, 1),
                 util::format_double(100 * xb.accuracy, 1)});
    }
    std::printf("%s", t.to_string().c_str());
  }

  // --- B. Forest size ---
  bench::heading("B. RF accuracy vs number of trees");
  {
    util::Table t({"trees", "CV acc", "x-bldg acc"});
    const ml::DataSet dtr = to_dataset(train_entries, -1);
    const ml::DataSet dte = to_dataset(test_entries, -1);
    for (int trees : {1, 5, 15, 30, 60, 120}) {
      const ml::ClassifierFactory f = [trees] {
        ml::RandomForestConfig c;
        c.num_trees = trees;
        return std::make_unique<ml::RandomForest>(c);
      };
      const auto cv = ml::cross_validate(dtr, f, 5, 5, rng);
      const auto xb = ml::train_test(dtr, dte, f, rng);
      t.add_row({std::to_string(trees),
                 util::format_double(100 * cv.accuracy, 1),
                 util::format_double(100 * xb.accuracy, 1)});
    }
    std::printf("%s", t.to_string().c_str());
  }

  // --- C. Missing-ACK fallback variants ---
  bench::heading("C. missing-ACK fallback: median bytes gap vs Oracle-Data");
  {
    util::Table t({"fallback", "BA 0.5ms median gap (MB)",
                   "BA 250ms median gap (MB)"});
    struct Variant {
      const char* name;
      phy::McsIndex mcs_threshold;  // BA below this; above, overhead decides
      double overhead_threshold;
    };
    const Variant variants[] = {
        {"LiBRA rule (MCS<6, few-ms)", 6, 10.0},
        {"always BA", 99, 1e9},
        {"always RA", -1, -1.0},
    };
    for (const Variant& v : variants) {
      std::vector<std::string> row{v.name};
      for (double ba : {0.5, 250.0}) {
        trace::GroundTruthConfig cfg;
        cfg.alpha = mac::alpha_for_ba_overhead(ba);
        cfg.ba_overhead_ms = ba;
        core::LibraClassifierConfig ccfg;
        ccfg.no_ack_mcs_threshold = v.mcs_threshold;
        ccfg.no_ack_ba_overhead_threshold_ms = v.overhead_threshold;
        core::LibraClassifier clf(ccfg);
        clf.train(wb.training, cfg, rng);
        const sim::EventSimulator simulator(&clf);
        sim::EventParams p;
        p.ba_overhead_ms = ba;
        p.rule = cfg;
        std::vector<double> gaps;
        for (const auto& rec : wb.testing.records) {
          const auto oracle =
              simulator.run(rec, core::Strategy::kOracleData, p, rng);
          const auto r = simulator.run(rec, core::Strategy::kLibra, p, rng);
          gaps.push_back(oracle.bytes_mb - r.bytes_mb);
        }
        row.push_back(util::format_double(util::median(gaps), 2));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  // --- E. Confidence gate on the classifier's adaptation verdicts ---
  bench::heading("E. confidence gate: mean bytes gap vs Oracle-Data (MB)");
  {
    util::Table t({"min confidence", "BA 0.5ms mean gap", "BA 250ms mean gap"});
    for (double conf : {0.0, 0.5, 0.7, 0.9}) {
      std::vector<std::string> row{util::format_double(conf, 1)};
      for (double ba : {0.5, 250.0}) {
        trace::GroundTruthConfig cfg;
        cfg.alpha = mac::alpha_for_ba_overhead(ba);
        cfg.ba_overhead_ms = ba;
        core::LibraClassifierConfig ccfg;
        ccfg.min_confidence = conf;
        core::LibraClassifier clf(ccfg);
        clf.train(wb.training, cfg, rng);
        const sim::EventSimulator simulator(&clf);
        sim::EventParams p;
        p.ba_overhead_ms = ba;
        p.rule = cfg;
        double gap_sum = 0.0;
        int n = 0;
        for (const auto& rec : wb.testing.records) {
          const auto oracle =
              simulator.run(rec, core::Strategy::kOracleData, p, rng);
          const auto r = simulator.run(rec, core::Strategy::kLibra, p, rng);
          gap_sum += oracle.bytes_mb - r.bytes_mb;
          ++n;
        }
        row.push_back(util::format_double(gap_sum / n, 2));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
    std::printf(
        "note: a moderate gate trims misprediction cost when sweeps are\n"
        "expensive; an extreme gate degenerates toward never adapting.\n");
  }

  // --- D. Utility weight alpha ---
  bench::heading("D. ground-truth BA fraction vs alpha (Eqn. 1)");
  {
    util::Table t({"alpha", "BA cases", "RA cases", "BA fraction"});
    for (double alpha : {0.0, 0.3, 0.5, 0.7, 1.0}) {
      trace::GroundTruthConfig cfg;
      cfg.alpha = alpha;
      const auto summary = trace::summarize(wb.training, cfg);
      t.add_row({util::format_double(alpha, 1),
                 std::to_string(summary.overall.ba),
                 std::to_string(summary.overall.ra),
                 util::format_double(
                     double(summary.overall.ba) / summary.overall.total, 2)});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf(
        "note: lower alpha weights recovery delay more, shifting the ground\n"
        "truth toward the cheaper mechanism for the configured overheads.\n");
  }
  return 0;
}
