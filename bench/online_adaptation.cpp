// Extension: online training in a new environment.
//
// The model is pre-trained on the main building's campaign, then deployed
// in Buildings 1-2 where its accuracy initially drops (the cross-building
// gap of Sec. 6.2). Streaming the deployment events into the online trainer
// closes that gap: prediction accuracy is reported over consecutive buckets
// of events, static-offline vs online-updating.
#include <cstdio>

#include "common.h"
#include "core/online.h"
#include "util/thread_pool.h"

using namespace libra;

int main() {
  std::printf("Online training: closing the cross-building accuracy gap\n");
  auto wb = bench::Workbench::collect(/*with_na=*/true);
  trace::GroundTruthConfig gt;
  util::Rng rng(5);

  // The deployment-relevant case: the vendor's offline campaign covered
  // only part of the state space (here: the lobby and lab, no corridors or
  // conference room), so the shipped model generalizes poorly to the new
  // buildings. Online retraining is what closes that gap.
  trace::Dataset limited;
  for (const auto& rec : wb.training.records) {
    if (rec.env_name == "lobby" || rec.env_name == "lab") {
      limited.records.push_back(rec);
    }
  }
  for (const auto& rec : wb.training.na_records) {
    if (rec.env_name == "lobby" || rec.env_name == "lab") {
      limited.na_records.push_back(rec);
    }
  }
  std::printf("limited seed campaign: %zu of %zu records (lobby+lab only)\n",
              limited.records.size(), wb.training.records.size());

  // One pool shared by the offline baseline and every online retrain; the
  // learned models are bit-identical to a serial run (per-tree streams).
  util::ThreadPool pool;
  std::printf("retrain pool: %d threads\n", pool.num_threads());

  core::LibraClassifier offline;
  offline.set_thread_pool(&pool);
  offline.train(limited, gt, rng);

  core::OnlineLibra online;
  online.set_thread_pool(&pool);
  online.seed(limited, gt, rng);

  // Stream the testing entries in a shuffled deployment order, predicting
  // BEFORE observing each event (prequential evaluation).
  auto entries = wb.testing.labeled3(gt);
  std::vector<std::size_t> order(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  // Accuracy is scored on the adaptation-needed (BA/RA) events only; the
  // easy No-Adaptation cases would dilute the cross-building gap.
  const std::size_t bucket = 60;
  util::Table t({"events seen", "offline acc (BA/RA)", "online acc (BA/RA)",
                 "retrains"});
  int off_correct = 0, on_correct = 0;
  std::size_t in_bucket = 0, scored = 0, seen = 0;
  // The NA-augmentation records live in testing.na_records; map each
  // labeled3 entry back to its record for the observe() call.
  std::vector<const trace::CaseRecord*> record_of;
  for (const auto& r : wb.testing.records) record_of.push_back(&r);
  for (const auto& r : wb.testing.na_records) record_of.push_back(&r);

  int late_off = 0, late_on = 0, late_n = 0;
  constexpr std::size_t kWarmup = 120;
  for (std::size_t idx : order) {
    const auto& e = entries[idx];
    if (e.y != trace::Action::kNA) {
      const bool off_ok = offline.classify(e.x, rng) == e.y;
      const bool on_ok = online.classify(e.x, rng) == e.y;
      off_correct += off_ok;
      on_correct += on_ok;
      ++scored;
      if (seen >= kWarmup) {
        late_off += off_ok;
        late_on += on_ok;
        ++late_n;
      }
    }
    online.observe(*record_of[idx], gt, rng);
    ++in_bucket;
    ++seen;
    if (in_bucket == bucket || seen == order.size()) {
      if (scored > 0) {
        t.add_row({std::to_string(seen),
                   util::format_double(100.0 * off_correct / scored, 1),
                   util::format_double(100.0 * on_correct / scored, 1),
                   std::to_string(online.retrains())});
      }
      off_correct = on_correct = 0;
      in_bucket = scored = 0;
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nafter %zu warm-up events (cumulative over the remaining %d BA/RA "
      "events):\n  offline %.1f%%  vs  online %.1f%%\n",
      kWarmup, late_n, 100.0 * late_off / late_n, 100.0 * late_on / late_n);
  std::printf(
      "\nexpected shape: both start at the limited-campaign cross-building\n"
      "accuracy; the online model climbs as deployment events accumulate,\n"
      "the offline model stays flat (paper Sec. 6.2 + the online-training\n"
      "discussion of [9]).\n");
  return 0;
}
