// The beam-sounding (MOCA [24]) baseline the paper could not run on X60.
//
// MOCA maintains a pre-sounded, angularly diverse failover sector and hops
// to it instantly on failure -- virtually zero recovery delay, no sweep.
// Sec. 8 (and [9]) argue the approach breaks under angular displacement:
// when the client *rotates*, the failover pair measured at the old
// orientation is as stale as the primary. With the failover pair collected
// at every state, that claim becomes measurable.
#include <cstdio>

#include "common.h"
#include "sim/event_sim.h"

using namespace libra;

int main() {
  std::printf("Beam sounding (MOCA-style failover) vs LiBRA / BA First\n");
  auto wb = bench::Workbench::collect(/*with_na=*/true);
  trace::GroundTruthConfig gt;
  gt.alpha = 0.7;
  gt.ba_overhead_ms = 5.0;
  util::Rng rng(23);
  core::LibraClassifier classifier;
  classifier.train(wb.training, gt, rng);
  const sim::EventSimulator simulator(&classifier);
  sim::EventParams p;
  p.ba_overhead_ms = 5.0;
  p.rule = gt;

  struct Bucket {
    const char* name;
    std::map<core::Strategy, std::vector<double>> ratio;  // bytes / oracle
    std::map<core::Strategy, std::vector<double>> delay;
  };
  Bucket angular{"angular displacement (rotations)", {}, {}};
  Bucket linear{"linear displacement (moves)", {}, {}};
  Bucket blockage{"blockage", {}, {}};

  const core::Strategy contenders[] = {core::Strategy::kBeamSounding,
                                       core::Strategy::kBaFirst,
                                       core::Strategy::kLibra};
  for (const trace::CaseRecord& rec : wb.testing.records) {
    Bucket* bucket = nullptr;
    if (rec.impairment == trace::Impairment::kDisplacement) {
      bucket = rec.angular_displacement ? &angular : &linear;
    } else if (rec.impairment == trace::Impairment::kBlockage) {
      bucket = &blockage;
    } else {
      continue;
    }
    const auto oracle =
        simulator.run(rec, core::Strategy::kOracleData, p, rng);
    for (core::Strategy s : contenders) {
      const auto r = simulator.run(rec, s, p, rng);
      bucket->ratio[s].push_back(
          oracle.bytes_mb > 0 ? r.bytes_mb / oracle.bytes_mb : 1.0);
      bucket->delay[s].push_back(r.recovery_delay_ms);
    }
  }

  for (Bucket* bucket : {&angular, &linear, &blockage}) {
    bench::heading(bucket->name);
    util::Table t({"strategy", "n", "median bytes ratio", "p10 bytes ratio",
                   "median delay (ms)", "p90 delay (ms)"});
    for (core::Strategy s : contenders) {
      auto& ratio = bucket->ratio[s];
      auto& delay = bucket->delay[s];
      t.add_row({core::to_string(s), std::to_string(ratio.size()),
                 util::format_double(util::median(ratio), 2),
                 util::format_double(util::percentile(ratio, 10), 2),
                 util::format_double(util::median(delay), 1),
                 util::format_double(util::percentile(delay, 90), 1)});
    }
    std::printf("%s", t.to_string().c_str());
  }
  std::printf(
      "\nshape ([9]/[24] discussion in Sec. 2 & 8): beam sounding collapses\n"
      "under rotations -- the stale failover is no better than the stale\n"
      "primary (p10 bytes ratio far below the sweep-based schemes) -- and\n"
      "even elsewhere its 15-degree sector diversity is often not *path*\n"
      "diversity, so the hop frequently lands on a pair the same obstacle\n"
      "killed. LiBRA stays at the oracle across all three buckets.\n");
  return 0;
}
