// Figure 11 (Sec. 8.2): single link impairment -- CDFs of the difference
// between each algorithm's link recovery delay and Oracle-Delay's, for the
// full BA-overhead x FAT grid.
//
// Paper shape: the recovery delay is longest with RA First when BA is cheap
// (0.5/5 ms) and with BA First when BA is expensive (150/250 ms; median gap
// > 200 ms at 250 ms). LiBRA stays within ~5 ms of optimal in 57-98% of the
// cases across all parameter combinations.
#include <cstdio>

#include "common.h"
#include "mac/timing.h"
#include "sim/event_sim.h"

using namespace libra;

int main() {
  std::printf("Fig. 11: single impairment, recovery-delay gap vs Oracle-Delay\n");
  auto wb = bench::Workbench::collect(/*with_na=*/true);

  for (double ba : mac::kBaOverheadsMs) {
    for (double fat : mac::kFatsMs) {
      trace::GroundTruthConfig gt;
      gt.alpha = mac::alpha_for_ba_overhead(ba);
      gt.fat_ms = fat;
      gt.ba_overhead_ms = ba;

      util::Rng rng(321);
      core::LibraClassifier classifier;
      classifier.train(wb.training, gt, rng);
      const sim::EventSimulator simulator(&classifier);

      sim::EventParams p;
      p.fat_ms = fat;
      p.ba_overhead_ms = ba;
      p.flow_ms = 1000.0;
      p.rule = gt;

      char title[128];
      std::snprintf(title, sizeof(title), "BA overhead %.1f ms, FAT %.0f ms",
                    ba, fat);
      bench::heading(title);
      util::Table t = bench::cdf_table("algorithm");
      std::map<core::Strategy, std::vector<double>> gaps;
      std::map<core::Strategy, int> within5;
      int broken_links = 0;
      for (const trace::CaseRecord& rec : wb.testing.records) {
        const auto oracle =
            simulator.run(rec, core::Strategy::kOracleDelay, p, rng);
        // Delay comparisons are meaningful only when the link actually
        // broke (otherwise every delay is 0).
        bool counted = false;
        for (core::Strategy s :
             {core::Strategy::kBaFirst, core::Strategy::kRaFirst,
              core::Strategy::kLibra}) {
          const auto r = simulator.run(rec, s, p, rng);
          const double gap = r.recovery_delay_ms - oracle.recovery_delay_ms;
          gaps[s].push_back(gap);
          within5[s] += gap <= 5.0;
          counted = true;
        }
        if (counted && oracle.recovery_delay_ms > 0.0) ++broken_links;
      }
      for (auto& [s, v] : gaps) {
        const double frac = 100.0 * within5[s] / static_cast<double>(v.size());
        bench::print_cdf_row(t, core::to_string(s), v, 1);
        std::printf("  %-12s within 5 ms of optimal in %.0f%% of cases\n",
                    core::to_string(s).c_str(), frac);
      }
      std::printf("%s(%d of %zu cases actually broke the link)\n",
                  t.to_string().c_str(), broken_links,
                  wb.testing.records.size());
    }
  }
  std::printf(
      "\npaper: RA First slowest at low BA overhead; BA First slowest at\n"
      "high BA overhead (median gap >200 ms at 250 ms); LiBRA within 5 ms\n"
      "of optimal in 57-98%% of cases.\n");
  return 0;
}
