// Ablation: beam-adaptation algorithm quality vs overhead (the axis behind
// Sec. 8.1's BA-overhead parameter sweep).
//
// Four BA algorithms from Sec. 2 are run over many random link placements
// in every training environment:
//   exhaustive   O(N^2)     - the dataset-collection reference
//   SLS          O(2N)      - 802.11ad Tx+Rx sweep
//   Tx-only      O(N)       - what COTS devices do (quasi-omni Rx)
//   coarse-fine  O(N^2/s^2 + r^2) - hierarchical overhead reduction
//
// Reported: probe count, sweep airtime, and the SNR/throughput loss of the
// selected pair relative to the exhaustive optimum. The quality-overhead
// trade directly determines which LiBRA operating point (0.5/5/150/250 ms)
// a deployment lands on.
#include <cstdio>
#include <functional>

#include "common.h"
#include "env/registry.h"
#include "mac/beam_training.h"
#include "phy/sampler.h"

using namespace libra;

int main() {
  std::printf("BA algorithm ablation: selection quality vs sweep overhead\n");
  phy::McsTable table;
  const phy::ErrorModel em(&table);
  phy::SamplerConfig quiet;
  quiet.snr_jitter_db = 0.3;
  const phy::PhySampler sampler(&em, quiet);
  const array::Codebook codebook;
  const mac::BeamTrainer trainer;

  struct Algo {
    const char* name;
    std::function<mac::SweepResult(const channel::Link&, util::Rng&)> run;
  };
  const Algo algos[] = {
      {"exhaustive O(N^2)",
       [&](const channel::Link& l, util::Rng& r) {
         return trainer.exhaustive(l, sampler, r);
       }},
      {"SLS O(2N)",
       [&](const channel::Link& l, util::Rng& r) {
         return trainer.sls_80211ad(l, sampler, r);
       }},
      {"Tx-only O(N)",
       [&](const channel::Link& l, util::Rng& r) {
         return trainer.sls_tx_only(l, sampler, r);
       }},
      {"coarse-fine",
       [&](const channel::Link& l, util::Rng& r) {
         return trainer.coarse_fine(l, sampler, r);
       }},
  };

  util::Table t({"algorithm", "probes", "airtime (ms)", "median SNR loss",
                 "p90 SNR loss", "median tput loss %"});
  std::map<std::string, std::vector<double>> snr_loss, tput_loss;
  std::map<std::string, int> probes;
  std::map<std::string, double> airtime;

  util::Rng rng(21);
  auto environments = env::training_environments();
  int placements = 0;
  for (auto& environment : environments) {
    const auto bb = environment.bounding_box();
    for (int p = 0; p < 25; ++p) {
      const geom::Vec2 tx_pos =
          environment.clamp_inside({rng.uniform(bb.min.x, bb.max.x),
                                    rng.uniform(bb.min.y, bb.max.y)},
                                   0.5);
      const geom::Vec2 rx_pos =
          environment.clamp_inside({rng.uniform(bb.min.x, bb.max.x),
                                    rng.uniform(bb.min.y, bb.max.y)},
                                   0.5);
      if (geom::distance(tx_pos, rx_pos) < 2.0) continue;
      array::PhasedArray tx(tx_pos, (rx_pos - tx_pos).angle_deg(), &codebook);
      array::PhasedArray rx(rx_pos, (tx_pos - rx_pos).angle_deg() +
                                        rng.uniform(-40.0, 40.0),
                            &codebook);
      channel::Link link(&environment, &tx, &rx);
      ++placements;

      // True optimum by noiseless search.
      double best_true = -1e9;
      for (array::BeamId tb = 0; tb < codebook.size(); ++tb) {
        for (array::BeamId rb = 0; rb < codebook.size(); ++rb) {
          best_true = std::max(best_true, link.snr_db(tb, rb));
        }
      }
      const phy::McsIndex best_mcs = table.highest_supported(best_true);
      const double best_tput =
          best_mcs >= 0 ? em.expected_throughput_mbps(best_mcs, best_true)
                        : 0.0;

      for (const Algo& algo : algos) {
        const mac::SweepResult r = algo.run(link, rng);
        const double achieved = link.snr_db(r.tx_beam, r.rx_beam);
        snr_loss[algo.name].push_back(best_true - achieved);
        const phy::McsIndex m = table.highest_supported(achieved);
        const double tput =
            m >= 0 ? em.expected_throughput_mbps(m, achieved) : 0.0;
        tput_loss[algo.name].push_back(
            best_tput > 0 ? 100.0 * (best_tput - tput) / best_tput : 0.0);
        probes[algo.name] = r.measurements;
        airtime[algo.name] = r.duration_ms;
      }
    }
  }
  for (const Algo& algo : algos) {
    auto& sl = snr_loss[algo.name];
    t.add_row({algo.name, std::to_string(probes[algo.name]),
               util::format_double(airtime[algo.name], 2),
               util::format_double(util::median(sl), 2),
               util::format_double(util::percentile(sl, 90), 2),
               util::format_double(util::median(tput_loss[algo.name]), 1)});
  }
  std::printf("(%d random placements across the six environments)\n%s",
              placements, t.to_string().c_str());
  std::printf(
      "\nexpected shape: exhaustive is the quality reference; Tx-only loses\n"
      "the Rx array gain (~14 dB, the COTS operating point); SLS and\n"
      "coarse-fine trade a fraction of a dB for 12x fewer probes.\n");
  return 0;
}
