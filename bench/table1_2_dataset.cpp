// Tables 1 and 2 (Sec. 4-5): dataset summaries.
//
// Reproduces the main/training dataset (six environments in the campus
// building) and the testing dataset (Buildings 1-2), and prints, per
// impairment type, the number of cases, the BA/RA ground-truth split (alpha
// = 1, throughput-optimizing, as in the paper's tables) and the number of
// measurement positions. The paper's values are printed alongside.
#include <cstdio>

#include "common.h"

using namespace libra;

namespace {

void print_summary(const char* title, const trace::DatasetSummary& s,
                   const int paper[4][4]) {
  bench::heading(title);
  util::Table t({"impairment", "cases", "BA", "RA", "positions",
                 "paper cases", "paper BA", "paper RA", "paper pos"});
  const trace::DatasetSummaryRow* rows[4] = {&s.displacement, &s.blockage,
                                             &s.interference, &s.overall};
  const char* names[4] = {"Displacement", "Blockage", "Interference",
                          "Overall"};
  for (int i = 0; i < 4; ++i) {
    t.add_row({names[i], std::to_string(rows[i]->total),
               std::to_string(rows[i]->ba), std::to_string(rows[i]->ra),
               std::to_string(rows[i]->positions),
               std::to_string(paper[i][0]), std::to_string(paper[i][1]),
               std::to_string(paper[i][2]), std::to_string(paper[i][3])});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("per-environment positions (overall): ");
  for (const auto& [env_name, n] : s.overall.positions_per_env) {
    std::printf("%s=%d ", env_name.c_str(), n);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Tables 1-2: dataset summaries (ground truth alpha=1)\n");
  auto wb = bench::Workbench::collect(/*with_na=*/false);

  trace::GroundTruthConfig gt;  // alpha = 1: throughput-only, as in Table 1
  const auto train_summary = trace::summarize(wb.training, gt);
  const auto test_summary = trace::summarize(wb.testing, gt);

  // Paper Table 1: {cases, BA, RA, positions}.
  const int paper_train[4][4] = {{479, 380, 99, 94},
                                 {81, 72, 9, 12},
                                 {108, 36, 72, 12},
                                 {668, 488, 180, 118}};
  const int paper_test[4][4] = {{165, 129, 36, 34},
                                {27, 24, 3, 4},
                                {36, 12, 24, 4},
                                {228, 165, 63, 42}};

  print_summary("Table 1: main/training dataset", train_summary, paper_train);
  print_summary("Table 2: testing dataset (Buildings 1-2)", test_summary,
                paper_test);

  std::printf(
      "\nShape checks: BA dominates displacement & blockage; RA dominates\n"
      "interference; overall BA fraction %0.0f%% (paper: 73%%).\n",
      100.0 * train_summary.overall.ba / train_summary.overall.total);
  return 0;
}
