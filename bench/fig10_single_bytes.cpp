// Figure 10 (Sec. 8.2): single link impairment -- CDFs of the difference
// between the bytes delivered by Oracle-Data and each algorithm, for every
// combination of BA overhead {0.5, 5, 150, 250} ms, FAT {2, 10} ms and flow
// duration {0.4, 1} s, over the combined Buildings-1/2 dataset.
//
// Paper shape: LiBRA tracks the oracle (same bytes in ~85% of cases at
// FAT 2 ms); BA First matches in 70-81% and degrades as the BA overhead
// grows; RA First is worst (50-58%) and suffers most from long flows.
#include <cstdio>

#include "common.h"
#include "mac/timing.h"
#include "sim/event_sim.h"

using namespace libra;

int main() {
  std::printf("Fig. 10: single impairment, bytes-delivered gap vs Oracle-Data\n");
  auto wb = bench::Workbench::collect(/*with_na=*/true);

  for (double ba : mac::kBaOverheadsMs) {
    for (double fat : mac::kFatsMs) {
      trace::GroundTruthConfig gt;
      gt.alpha = mac::alpha_for_ba_overhead(ba);
      gt.fat_ms = fat;
      gt.ba_overhead_ms = ba;

      util::Rng rng(123);
      core::LibraClassifier classifier;
      classifier.train(wb.training, gt, rng);
      const sim::EventSimulator simulator(&classifier);

      char title[128];
      std::snprintf(title, sizeof(title),
                    "BA overhead %.1f ms, FAT %.0f ms (alpha=%.1f)", ba, fat,
                    gt.alpha);
      bench::heading(title);
      util::Table t = bench::cdf_table("algorithm (flow)");

      for (double flow_ms : {400.0, 1000.0}) {
        sim::EventParams p;
        p.fat_ms = fat;
        p.ba_overhead_ms = ba;
        p.flow_ms = flow_ms;
        p.rule = gt;
        std::map<core::Strategy, std::vector<double>> gaps;
        std::map<core::Strategy, int> zero_gap;
        for (const trace::CaseRecord& rec : wb.testing.records) {
          const auto oracle =
              simulator.run(rec, core::Strategy::kOracleData, p, rng);
          for (core::Strategy s :
               {core::Strategy::kBaFirst, core::Strategy::kRaFirst,
                core::Strategy::kLibra}) {
            const auto r = simulator.run(rec, s, p, rng);
            const double gap = oracle.bytes_mb - r.bytes_mb;
            gaps[s].push_back(gap);
            zero_gap[s] += gap <= 1.0;  // "same number of bytes" (within 1 MB)
          }
        }
        for (auto& [s, v] : gaps) {
          char label[64];
          std::snprintf(label, sizeof(label), "%s (%.1f s)",
                        core::to_string(s).c_str(), flow_ms / 1000.0);
          const double frac =
              100.0 * zero_gap[s] / static_cast<double>(v.size());
          bench::print_cdf_row(t, label, v, 1);
          std::printf("  %-20s matches oracle (<=1 MB gap) in %.0f%% of cases\n",
                      label, frac);
        }
      }
      std::printf("%s", t.to_string().c_str());
    }
  }
  std::printf(
      "\npaper: LiBRA ~= oracle in ~85%% of cases (FAT 2 ms); BA First\n"
      "70-81%%, worse with higher BA overhead; RA First 50-58%% and most\n"
      "sensitive to flow length.\n");
  return 0;
}
