// Figures 4-9 (Sec. 6.1): CDFs of each PHY metric, separately for the cases
// where BA outperforms RA and where RA outperforms BA, per impairment type
// and for the combined dataset.
//
// Metrics: SNR difference (Fig. 4), ToF difference (Fig. 5), PDP similarity
// (Fig. 6), CSI similarity (Fig. 7), CDR (Fig. 8), initial MCS (Fig. 9).
// The paper's headline observations are printed after each figure block.
#include <cstdio>
#include <functional>
#include <optional>

#include "common.h"

using namespace libra;

namespace {

using Extract = std::function<std::optional<double>(const trace::LabeledEntry&)>;

void figure(const char* title, const std::vector<trace::LabeledEntry>& entries,
            const Extract& metric, const char* note, int precision = 2) {
  bench::heading(title);
  util::Table t = bench::cdf_table("subset");
  const std::pair<const char*, std::optional<trace::Impairment>> subsets[] = {
      {"Displacement", trace::Impairment::kDisplacement},
      {"Blockage", trace::Impairment::kBlockage},
      {"Interference", trace::Impairment::kInterference},
      {"Overall", std::nullopt},
  };
  for (const auto& [name, imp] : subsets) {
    for (trace::Action cls : {trace::Action::kBA, trace::Action::kRA}) {
      std::vector<double> values;
      for (const trace::LabeledEntry& e : entries) {
        if (imp && e.impairment != *imp) continue;
        if (e.y != cls) continue;
        if (const auto v = metric(e)) values.push_back(*v);
      }
      bench::print_cdf_row(t, std::string(name) + "/" + to_string(cls),
                           std::move(values), precision);
    }
  }
  std::printf("%s%s\n", t.to_string().c_str(), note);
}

}  // namespace

int main() {
  std::printf("Figures 4-9: PHY metric CDFs for BA-wins vs RA-wins cases\n");
  auto wb = bench::Workbench::collect(/*with_na=*/false);
  trace::GroundTruthConfig gt;  // alpha = 1 as in Sec. 6.1
  const auto entries = wb.training.labeled(gt);

  figure("Fig. 4: SNR difference (dB)", entries,
         [](const trace::LabeledEntry& e) {
           return std::optional<double>(e.x.snr_diff_db());
         },
         "paper: drops > ~7 dB (displacement) occur only in BA cases; the\n"
         "threshold shifts to ~12 dB on the combined dataset.");

  figure("Fig. 5: ToF difference (ns; finite cases only)", entries,
         [](const trace::LabeledEntry& e) -> std::optional<double> {
           if (e.x.tof_diff_ns() >= trace::kTofInfinity) return std::nullopt;
           return e.x.tof_diff_ns();
         },
         "paper: RA-wins cases have negative ToF difference (backward\n"
         "motion); zero-or-infinite ToF difference implies BA.");
  {
    // Companion statistic: the fraction of cases with unmeasurable ToF.
    int inf_ba = 0, n_ba = 0, inf_ra = 0, n_ra = 0;
    for (const auto& e : entries) {
      const bool inf = e.x.tof_diff_ns() >= trace::kTofInfinity;
      if (e.y == trace::Action::kBA) {
        ++n_ba;
        inf_ba += inf;
      } else {
        ++n_ra;
        inf_ra += inf;
      }
    }
    std::printf("ToF=infinity fraction: BA-wins %.2f  RA-wins %.2f\n",
                double(inf_ba) / n_ba, double(inf_ra) / n_ra);
  }

  figure("Fig. 6: PDP similarity", entries,
         [](const trace::LabeledEntry& e) {
           return std::optional<double>(e.x.pdp_similarity());
         },
         "paper: PDP similarity is high everywhere (>0.65; sparse 60 GHz\n"
         "channels) and cannot separate the classes.");

  figure("Fig. 7: CSI (FFT-of-PDP) similarity", entries,
         [](const trace::LabeledEntry& e) {
           return std::optional<double>(e.x.csi_similarity());
         },
         "paper: CSI similarity spans a wide range but the class CDFs\n"
         "overlap heavily.");

  figure("Fig. 8: CDR at the initial MCS", entries,
         [](const trace::LabeledEntry& e) {
           return std::optional<double>(e.x.cdr());
         },
         "paper: CDR collapses to ~0 for ~90% of BA cases AND ~70% of RA\n"
         "cases -- loss alone cannot choose the mechanism.");

  figure("Fig. 9: initial MCS", entries,
         [](const trace::LabeledEntry& e) {
           return std::optional<double>(e.x.initial_mcs());
         },
         "paper: RA wins almost only from a high initial MCS; low initial\n"
         "MCS leaves no headroom for RA and implies BA.",
         0);

  // Single-threshold classification power (Sec. 6.1.1): how many BA cases a
  // 7 dB SNR-drop threshold identifies under displacement vs combined.
  int ba_disp = 0, ba_disp_over7 = 0, ba_all = 0, ba_all_over12 = 0;
  for (const auto& e : entries) {
    if (e.y != trace::Action::kBA) continue;
    if (e.impairment == trace::Impairment::kDisplacement) {
      ++ba_disp;
      ba_disp_over7 += e.x.snr_diff_db() > 7.0;
    }
    ++ba_all;
    ba_all_over12 += e.x.snr_diff_db() > 12.0;
  }
  std::printf(
      "\nSNR-threshold classification power: displacement >7dB identifies "
      "%.0f%% of BA cases (paper 73%%); combined >12dB identifies %.0f%% "
      "(paper 30%%).\n",
      100.0 * ba_disp_over7 / ba_disp, 100.0 * ba_all_over12 / ba_all);
  return 0;
}
