// Extension experiment (beyond the paper's trace-based evaluation):
// closed-loop validation. The paper evaluates LiBRA by replaying collected
// traces (Sec. 8); here the three controllers run LIVE against the channel
// model -- Algorithm 1 executing frame by frame while the Rx moves, people
// walk through the beam, and a hidden terminal bursts.
//
// Expected shape (consistent with Sec. 8): LiBRA sustains the highest
// goodput with the fewest/shortest outages; RA First accumulates outages in
// scenarios needing beam changes; BA First wastes sweeps when RA would do.
#include <cstdio>
#include <functional>
#include <memory>

#include "common.h"
#include "core/controller.h"
#include "env/registry.h"
#include "sim/session.h"

using namespace libra;

namespace {

struct Scenario {
  const char* name;
  std::function<sim::SessionScript()> make;
};

std::vector<Scenario> scenarios() {
  return {
      {"static 10 s",
       [] {
         sim::SessionScript s;
         s.duration_ms = 10000;
         s.rx_trajectory = sim::Trajectory::stationary({10, 6}, 180.0);
         return s;
       }},
      {"blockage 3-6 s",
       [] {
         sim::SessionScript s;
         s.duration_ms = 10000;
         s.rx_trajectory = sim::Trajectory::stationary({10, 6}, 180.0);
         s.blockage.push_back({3000, 6000, {{6, 6}, 0.25, 28.0}});
         return s;
       }},
      {"double blockage",
       [] {
         sim::SessionScript s;
         s.duration_ms = 12000;
         s.rx_trajectory = sim::Trajectory::stationary({10, 6}, 180.0);
         s.blockage.push_back({2000, 4000, {{6, 6}, 0.25, 28.0}});
         s.blockage.push_back({7000, 9000, {{4, 6}, 0.25, 28.0}});
         return s;
       }},
      {"walk away facing AP",
       [] {
         sim::SessionScript s;
         s.duration_ms = 12000;
         s.rx_trajectory = sim::Trajectory::walk({6, 6}, {21, 6}, 12000.0,
                                                 geom::Vec2{2, 6});
         return s;
       }},
      {"rotate 0->90 deg",
       [] {
         sim::SessionScript s;
         s.duration_ms = 8000;
         s.rx_trajectory = sim::Trajectory({{0, {10, 6}, 180.0},
                                            {2000, {10, 6}, 180.0},
                                            {6000, {10, 6}, 90.0},
                                            {8000, {10, 6}, 90.0}});
         return s;
       }},
      {"interference burst",
       [] {
         sim::SessionScript s;
         s.duration_ms = 10000;
         s.rx_trajectory = sim::Trajectory::stationary({10, 6}, 180.0);
         s.interference.push_back({3000, 7000, {{10.5, 4.0}, 55.0, 0.5}});
         return s;
       }},
      {"mixed walk+block",
       [] {
         sim::SessionScript s;
         s.duration_ms = 15000;
         s.rx_trajectory = sim::Trajectory::walk({6, 6}, {18, 8}, 15000.0,
                                                 geom::Vec2{2, 6});
         s.blockage.push_back({5000, 8000, {{7, 6.4}, 0.25, 28.0}});
         s.interference.push_back({10000, 13000, {{12, 3.0}, 55.0, 0.5}});
         return s;
       }},
  };
}

}  // namespace

int main() {
  std::printf(
      "Closed-loop live sessions (extension; controllers run Algorithm 1 "
      "against the live channel)\n");
  auto wb = bench::Workbench::collect(/*with_na=*/true);
  trace::GroundTruthConfig gt;
  util::Rng rng(17);
  core::LibraClassifier classifier;
  classifier.train(wb.training, gt, rng);

  constexpr int kRepeats = 5;
  for (const Scenario& sc : scenarios()) {
    bench::heading(sc.name);
    util::Table t({"controller", "bytes (MB)", "goodput (Mbps)", "BA", "RA",
                   "outages", "outage ms"});
    for (int variant = 0; variant < 3; ++variant) {
      double bytes = 0, goodput = 0, ba = 0, ra = 0, outages = 0, ms = 0;
      const char* name = variant == 0   ? "LiBRA"
                         : variant == 1 ? "RA First"
                                        : "BA First";
      for (int rep = 0; rep < kRepeats; ++rep) {
        env::Environment lobby = env::make_lobby();
        const array::Codebook codebook;
        array::PhasedArray tx({2, 6}, 0.0, &codebook);
        array::PhasedArray rx({10, 6}, 180.0, &codebook);
        channel::Link link(&lobby, &tx, &rx);
        std::unique_ptr<core::LinkController> ctrl;
        switch (variant) {
          case 0:
            ctrl = std::make_unique<core::LibraController>(
                &link, wb.error_model.get(), &classifier);
            break;
          case 1:
            ctrl = std::make_unique<core::RaFirstController>(
                &link, wb.error_model.get(), core::ControllerConfig{});
            break;
          default:
            ctrl = std::make_unique<core::BaFirstController>(
                &link, wb.error_model.get(), core::ControllerConfig{});
        }
        util::Rng srng(100 + rep);
        const sim::SessionScript script = sc.make();
        const sim::SessionResult r =
            sim::run_session(lobby, link, *ctrl, script, srng);
        bytes += r.bytes_mb;
        goodput += r.avg_goodput_mbps;
        ba += r.adaptations_ba;
        ra += r.adaptations_ra;
        outages += r.outages;
        ms += r.total_outage_ms;
      }
      t.add_row({name, util::format_double(bytes / kRepeats, 0),
                 util::format_double(goodput / kRepeats, 0),
                 util::format_double(ba / kRepeats, 1),
                 util::format_double(ra / kRepeats, 1),
                 util::format_double(outages / kRepeats, 1),
                 util::format_double(ms / kRepeats, 0)});
    }
    std::printf("%s", t.to_string().c_str());
  }
  return 0;
}
