// Sec. 6.2's model-selection story, made explicit.
//
// The paper reports only the best parameter combination per model family
// after sweeping impurity measures and depth caps (DT/RF), kernels and
// regularization (SVM), and dropout (DNN). This bench reproduces those
// sweeps, plus the per-impairment analysis that motivates Sec. 5.2's
// "study the problem separately under each link impairment type first".
#include <cstdio>
#include <memory>

#include "common.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"
#include "ml/svm.h"

using namespace libra;

namespace {

ml::DataSet subset(const std::vector<trace::LabeledEntry>& entries,
                   std::optional<trace::Impairment> imp) {
  ml::DataSet d(trace::FeatureVector::kDim);
  for (const auto& e : entries) {
    if (imp && e.impairment != *imp) continue;
    d.add(e.x.v, e.y == trace::Action::kBA ? 0 : 1);
  }
  return d;
}

void sweep(const char* title, const ml::DataSet& train,
           const std::vector<std::pair<std::string, ml::ClassifierFactory>>&
               variants,
           util::Rng& rng) {
  bench::heading(title);
  util::Table t({"variant", "CV acc", "CV F1"});
  for (const auto& [name, factory] : variants) {
    const auto cv = ml::cross_validate(train, factory, 5, 5, rng);
    t.add_row({name, util::format_double(100 * cv.accuracy, 1),
               util::format_double(100 * cv.weighted_f1, 1)});
  }
  std::printf("%s", t.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Model selection sweeps (Sec. 6.2)\n");
  auto wb = bench::Workbench::collect(/*with_na=*/false);
  trace::GroundTruthConfig gt;
  const auto entries = wb.training.labeled(gt);
  const ml::DataSet train = subset(entries, std::nullopt);
  util::Rng rng(13);

  // --- DT: impurity x depth ---
  {
    std::vector<std::pair<std::string, ml::ClassifierFactory>> variants;
    for (ml::Impurity imp : {ml::Impurity::kGini, ml::Impurity::kEntropy}) {
      for (int depth : {3, 5, 8, 12, 100}) {
        char name[64];
        std::snprintf(name, sizeof(name), "%s depth<=%d",
                      imp == ml::Impurity::kGini ? "gini" : "entropy", depth);
        variants.emplace_back(name, [imp, depth] {
          ml::DecisionTreeConfig c;
          c.impurity = imp;
          c.max_depth = depth;
          return std::make_unique<ml::DecisionTree>(c);
        });
      }
    }
    sweep("decision tree: impurity x max depth (depth cap curbs overfit)",
          train, variants, rng);
  }

  // --- SVM: kernel x C ---
  {
    std::vector<std::pair<std::string, ml::ClassifierFactory>> variants;
    for (ml::Kernel kernel : {ml::Kernel::kLinear, ml::Kernel::kRbf}) {
      for (double c : {0.5, 5.0, 50.0}) {
        char name[64];
        std::snprintf(name, sizeof(name), "%s C=%.1f",
                      kernel == ml::Kernel::kLinear ? "linear" : "RBF", c);
        variants.emplace_back(name, [kernel, c] {
          ml::SvmConfig cfg;
          cfg.kernel = kernel;
          cfg.c = c;
          return std::make_unique<ml::Svm>(cfg);
        });
      }
    }
    sweep("SVM: kernel x regularization", train, variants, rng);
  }

  // --- DNN: dropout ---
  {
    std::vector<std::pair<std::string, ml::ClassifierFactory>> variants;
    for (double dropout : {0.0, 0.1, 0.2, 0.4}) {
      char name[64];
      std::snprintf(name, sizeof(name), "dropout %.1f", dropout);
      variants.emplace_back(name, [dropout] {
        ml::NeuralNetConfig cfg;
        cfg.dropout = dropout;
        cfg.epochs = 120;
        return std::make_unique<ml::NeuralNet>(cfg);
      });
    }
    sweep("DNN: dropout (the paper's chosen overfitting control)", train,
          variants, rng);
  }

  // --- per-impairment specialists vs the combined model ---
  bench::heading("per-impairment RF vs combined (Sec. 5.2 motivation)");
  {
    util::Table t({"training subset", "entries", "CV acc"});
    const ml::ClassifierFactory rf = [] {
      return std::make_unique<ml::RandomForest>();
    };
    const std::pair<const char*, std::optional<trace::Impairment>> subsets[] =
        {{"displacement only", trace::Impairment::kDisplacement},
         {"blockage only", trace::Impairment::kBlockage},
         {"interference only", trace::Impairment::kInterference},
         {"combined", std::nullopt}};
    for (const auto& [name, imp] : subsets) {
      const ml::DataSet d = subset(entries, imp);
      const auto cv = ml::cross_validate(d, rf, 5, 5, rng);
      t.add_row({name, std::to_string(d.size()),
                 util::format_double(100 * cv.accuracy, 1)});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf(
        "note: per-impairment models are easier problems (each impairment\n"
        "has a cleaner signature), but deployment cannot know the\n"
        "impairment type up front -- hence the combined model.\n");
  }
  return 0;
}
