// Micro-benchmarks (google-benchmark).
//
// The paper argues LiBRA is deployable because the per-decision inference
// cost is negligible (0.5 ms on a phone GPU; decisions every 2 frames).
// These benches measure our RF/DT/DNN inference, feature extraction, the
// ray tracer, the O(N) vs O(N^2) beam sweeps, and one full simulated event.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/classifier.h"
#include "core/trainer.h"
#include "env/registry.h"
#include "mac/beam_training.h"
#include "ml/compiled_forest.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"
#include "obs/aggregate.h"
#include "obs/metrics.h"
#include "obs/scrape.h"
#include "obs/span.h"
#include "util/thread_pool.h"
#include "phy/error_model.h"
#include "phy/pdp.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "sim/event_sim.h"
#include "sim/fleet.h"
#include "trace/dataset.h"
#include "util/fft.h"
#include "util/simd.h"
#include "util/stats.h"

using namespace libra;

namespace {

// Shared state, built once.
struct Fixture {
  phy::McsTable table;
  phy::ErrorModel em{&table};
  trace::Dataset training;
  trace::GroundTruthConfig gt;
  ml::DataSet train_ds{trace::FeatureVector::kDim};
  core::LibraClassifier classifier;
  util::Rng rng{1};

  Fixture() {
    trace::CollectOptions opt;
    opt.with_na_augmentation = true;
    training = trace::collect_dataset(trace::training_scenarios(), em, opt);
    for (const auto& e : training.labeled(gt)) {
      train_ds.add(e.x.v, e.y == trace::Action::kBA ? 0 : 1);
    }
    classifier.train(training, gt, rng);
  }

  static Fixture& get() {
    static Fixture f;
    return f;
  }
};

void BM_RandomForestInference(benchmark::State& state) {
  auto& f = Fixture::get();
  const auto row = f.train_ds.row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.classifier.forest().predict(row));
  }
}
BENCHMARK(BM_RandomForestInference);

void BM_DecisionTreeInference(benchmark::State& state) {
  auto& f = Fixture::get();
  ml::DecisionTree dt;
  util::Rng rng(2);
  dt.fit(f.train_ds, rng);
  const auto row = f.train_ds.row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt.predict(row));
  }
}
BENCHMARK(BM_DecisionTreeInference);

void BM_DnnInference(benchmark::State& state) {
  auto& f = Fixture::get();
  ml::NeuralNetConfig cfg;
  cfg.epochs = 5;  // training cost is irrelevant here
  ml::NeuralNet nn(cfg);
  util::Rng rng(3);
  nn.fit(f.train_ds, rng);
  const auto row = f.train_ds.row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn.predict(row));
  }
}
BENCHMARK(BM_DnnInference);

void BM_FeatureExtraction(benchmark::State& state) {
  auto& f = Fixture::get();
  const trace::CaseRecord& rec = f.training.records.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::extract_features(rec));
  }
}
BENCHMARK(BM_FeatureExtraction);

// Arg = num_threads (1 = serial legacy path). The `bit_identical` counter
// confirms the parallel forest matches the serial one exactly: same
// per-tree Rng streams, same importances, same predictions.
void BM_RandomForestTraining(benchmark::State& state) {
  auto& f = Fixture::get();
  ml::RandomForestConfig cfg;
  cfg.num_threads = static_cast<int>(state.range(0));
  ml::RandomForest rf(cfg);  // outside the loop: the pool persists
  for (auto _ : state) {
    util::Rng rng(4);
    rf.fit(f.train_ds, rng);
    benchmark::DoNotOptimize(rf);
  }
  ml::RandomForestConfig serial_cfg = cfg;
  serial_cfg.num_threads = 1;
  ml::RandomForest serial(serial_cfg);
  util::Rng r1(4), r2(4);
  serial.fit(f.train_ds, r1);
  rf.fit(f.train_ds, r2);
  state.counters["bit_identical"] =
      serial.feature_importances() == rf.feature_importances() &&
      serial.predict_batch(f.train_ds) == rf.predict_batch(f.train_ds);
}
BENCHMARK(BM_RandomForestTraining)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Repeated stratified 5-fold CV of a small forest, parallel across the
// (repeat, fold) grid. Arg = num_threads for the CV pool.
void BM_RepeatedCrossValidation(benchmark::State& state) {
  auto& f = Fixture::get();
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  const ml::ClassifierFactory factory = [] {
    ml::RandomForestConfig c;
    c.num_trees = 20;
    c.num_threads = 1;  // the CV grid supplies the parallelism
    return std::make_unique<ml::RandomForest>(c);
  };
  for (auto _ : state) {
    util::Rng rng(8);
    benchmark::DoNotOptimize(
        ml::cross_validate(f.train_ds, factory, 5, 4, rng, &pool));
  }
  util::Rng r1(8), r2(8);
  const ml::CvResult serial =
      ml::cross_validate(f.train_ds, factory, 5, 2, r1, nullptr);
  const ml::CvResult parallel =
      ml::cross_validate(f.train_ds, factory, 5, 2, r2, &pool);
  state.counters["bit_identical"] = serial.accuracy == parallel.accuracy &&
                                    serial.weighted_f1 == parallel.weighted_f1;
}
BENCHMARK(BM_RepeatedCrossValidation)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// `rows` feature rows cycled out of the training set: a serving-shaped
// batch without collecting a bigger campaign.
ml::DataSet replicate_rows(const ml::DataSet& src, std::size_t rows) {
  ml::DataSet out(src.num_features());
  out.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    out.add(src.row(i % src.size()), src.label(i % src.size()));
  }
  return out;
}

// The interpreted pointer-walk batch path (per-tree std::vector<Node>
// heaps), single-threaded: the reference the compiled arena is gated
// against. Args = {rows, trees}.
void BM_ForestBatchInterpreted(benchmark::State& state) {
  auto& f = Fixture::get();
  ml::RandomForestConfig cfg;
  cfg.num_trees = static_cast<int>(state.range(1));
  cfg.num_threads = 1;
  ml::RandomForest rf(cfg);
  util::Rng rng(4);
  rf.fit(f.train_ds, rng);  // no compile(): stays on the pointer walk
  const ml::DataSet data =
      replicate_rows(f.train_ds, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf.vote_fractions_batch(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(state.range(0)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ForestBatchInterpreted)
    ->Args({256, 20})
    ->Args({256, 60})
    ->Args({1024, 60})
    ->Args({4096, 60})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// The compiled flat-arena engine on the same rows x trees grid (also
// single-threaded -- the CI gate tracks engine speed, not pool scaling).
// `bit_identical` replays the batch against the interpreted walk; in
// double-threshold mode every vote fraction must match exactly.
void BM_CompiledForestBatch(benchmark::State& state) {
  auto& f = Fixture::get();
  ml::RandomForestConfig cfg;
  cfg.num_trees = static_cast<int>(state.range(1));
  cfg.num_threads = 1;
  ml::RandomForest rf(cfg);
  util::Rng rng(4);
  rf.fit(f.train_ds, rng);
  const ml::CompiledForest compiled(rf);
  const ml::DataSet data =
      replicate_rows(f.train_ds, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.vote_fractions_batch(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(state.range(0)),
      benchmark::Counter::kIsRate);
  state.counters["arena_kb"] =
      static_cast<double>(compiled.arena_bytes()) / 1024.0;
  state.counters["bit_identical"] =
      compiled.vote_fractions_batch(data) == rf.vote_fractions_batch(data);
  // Which kernel actually served the batch -- the gate prints this, so a
  // baseline refresh on a different runner is explainable.
  state.SetLabel(util::simd::isa_name(compiled.dispatch_isa()));
}
BENCHMARK(BM_CompiledForestBatch)
    ->Args({256, 20})
    ->Args({256, 60})
    ->Args({1024, 60})
    ->Args({4096, 60})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

ml::ThresholdPrecision precision_arg(std::int64_t v) {
  switch (v) {
    case 1: return ml::ThresholdPrecision::kFloat;
    case 2: return ml::ThresholdPrecision::kInt16;
    default: return ml::ThresholdPrecision::kDouble;
  }
}

// Map every feature onto an integer grid of `levels` steps across its
// observed range. kInt16 compilation (correctly) rejects forests whose
// thresholds sit closer together than its quantization step, which a
// forest trained on raw continuous readings rarely avoids; firmware
// front-ends shipping integer-quantized readings do. Integer grid values
// keep the trees' midpoint thresholds exact in floating point (halves of
// integer sums), so mathematically-equal thresholds from different value
// pairs stay bit-identical instead of landing one ulp apart — the
// reduced-precision grid points bench the workload those modes are built
// for.
ml::DataSet grid_quantize(const ml::DataSet& src, int levels) {
  const std::size_t nf = src.num_features();
  std::vector<double> lo(nf, std::numeric_limits<double>::infinity());
  std::vector<double> hi(nf, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < src.size(); ++i) {
    const auto row = src.row(i);
    for (std::size_t f = 0; f < nf; ++f) {
      lo[f] = std::min(lo[f], row[f]);
      hi[f] = std::max(hi[f], row[f]);
    }
  }
  ml::DataSet out(nf);
  out.reserve(src.size());
  std::vector<double> q(nf);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const auto row = src.row(i);
    for (std::size_t f = 0; f < nf; ++f) {
      const double span = hi[f] - lo[f];
      q[f] = span > 0.0 ? std::round((row[f] - lo[f]) / span * levels)
                        : 0.0;
    }
    out.add(q, src.label(i));
  }
  return out;
}

// The dispatched traversal kernels against the forced-scalar group walk on
// one serving-shaped grid point. Args = {rows, trees, precision (0=double,
// 1=float, 2=int16), force_scalar}; the scalar rows are the denominators
// of the SIMD speedup the CI gate tracks, and the label records the
// dispatched ISA. `votes_match` replays the batch argmax against the
// double-mode scalar walk -- the cross-precision tolerance contract in
// ml/compiled_forest.h -- and `bit_identical` checks dispatch vs forced
// scalar within the same precision, which must match exactly.
void BM_SimdForestBatch(benchmark::State& state) {
  auto& f = Fixture::get();
  ml::RandomForestConfig cfg;
  cfg.num_trees = static_cast<int>(state.range(1));
  cfg.num_threads = 1;
  ml::RandomForest rf(cfg);
  util::Rng rng(4);
  ml::CompiledForestConfig ccfg;
  ccfg.precision = precision_arg(state.range(2));
  // Both reduced-precision grid points run on the grid-quantized workload
  // they are built for: integer grid values keep the trees' midpoint
  // thresholds exactly representable, so kInt16 compiles (no ordering
  // collapse) and kFloat narrows rows without one-ulp flips — votes_match
  // must come back 1. kDouble stays on the raw continuous readings.
  const bool reduced = ccfg.precision != ml::ThresholdPrecision::kDouble;
  const ml::DataSet train =
      reduced ? grid_quantize(f.train_ds, 512) : f.train_ds;
  rf.fit(train, rng);
  const ml::CompiledForest compiled(rf, ccfg);
  const ml::DataSet data =
      replicate_rows(train, static_cast<std::size_t>(state.range(0)));
  std::optional<util::simd::ScopedForceScalar> guard;
  if (state.range(3) != 0) guard.emplace();
  state.SetLabel(util::simd::isa_name(compiled.dispatch_isa()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.vote_fractions_batch(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(state.range(0)),
      benchmark::Counter::kIsRate);
  state.counters["arena_kb"] =
      static_cast<double>(compiled.arena_bytes()) / 1024.0;
  const std::vector<ml::Label> dispatched = compiled.predict_batch(data);
  state.counters["votes_match"] = [&] {
    const ml::CompiledForest reference(rf);  // kDouble
    util::simd::ScopedForceScalar scalar;
    return dispatched == reference.predict_batch(data);
  }();
  const std::vector<std::vector<double>> fracs =
      compiled.vote_fractions_batch(data);
  state.counters["bit_identical"] = [&] {
    util::simd::ScopedForceScalar scalar;
    return fracs == compiled.vote_fractions_batch(data);
  }();
}
BENCHMARK(BM_SimdForestBatch)
    ->Args({4096, 60, 0, 0})
    ->Args({4096, 60, 0, 1})
    ->Args({4096, 60, 1, 0})
    ->Args({4096, 60, 1, 1})
    ->Args({4096, 60, 2, 0})
    ->Args({4096, 60, 2, 1})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// Batched forest inference across all rows. Arg = num_threads.
void BM_ForestPredictBatch(benchmark::State& state) {
  auto& f = Fixture::get();
  ml::RandomForestConfig cfg;
  cfg.num_threads = static_cast<int>(state.range(0));
  ml::RandomForest rf(cfg);
  util::Rng rng(4);
  rf.fit(f.train_ds, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf.predict_batch(f.train_ds));
  }
}
BENCHMARK(BM_ForestPredictBatch)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// Fleet-scale decision serving: one classify_batch call over N links'
// feature rows, per-link jitter from per-link Rng streams, forest votes on
// a pool of `threads` workers. Args = {num_links, num_threads}. The
// `bit_identical` counter replays the batch against N serial per-link
// classify() calls fed clones of the same streams and checks every verdict
// matches -- the FleetSession determinism contract at the classifier
// boundary.
void BM_FleetClassifyBatch(benchmark::State& state) {
  auto& f = Fixture::get();
  const auto links = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  util::ThreadPool pool(threads);
  core::LibraClassifier clf = f.classifier;  // copies share the trees
  clf.set_thread_pool(&pool);

  std::vector<trace::FeatureVector> rows(links);
  for (std::size_t i = 0; i < links; ++i) {
    rows[i] = trace::extract_features(
        f.training.records[i % f.training.records.size()]);
  }
  std::vector<util::Rng> streams;
  std::vector<util::Rng*> stream_ptrs;
  streams.reserve(links);
  for (std::size_t i = 0; i < links; ++i) {
    streams.emplace_back(1000 + i);
  }
  for (util::Rng& s : streams) stream_ptrs.push_back(&s);

  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.classify_batch(rows, stream_ptrs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(links));
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(links),
      benchmark::Counter::kIsRate);

  // Verdict parity: batch vs. serial per-link classify on twin streams.
  std::vector<util::Rng> batch_streams, serial_streams;
  std::vector<util::Rng*> batch_ptrs;
  for (std::size_t i = 0; i < links; ++i) {
    batch_streams.emplace_back(2000 + i);
    serial_streams.emplace_back(2000 + i);
  }
  for (util::Rng& s : batch_streams) batch_ptrs.push_back(&s);
  const std::vector<trace::Action> batched =
      clf.classify_batch(rows, batch_ptrs);
  bool identical = true;
  for (std::size_t i = 0; i < links; ++i) {
    identical &= batched[i] == f.classifier.classify(rows[i],
                                                     serial_streams[i]);
  }
  state.counters["bit_identical"] = identical;
}
BENCHMARK(BM_FleetClassifyBatch)
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({128, 1})
    ->Args({128, 4})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// The fault-injection hooks on the serving pipeline. Arg(0) = no FaultPlan
// attached (every hook is a null-pointer check -- the cost every unfaulted
// run pays, which must stay ~zero), Arg(1) = the kitchen-sink demo plan.
// One iteration = one full 3-station faulted-canonical fleet run.
void BM_FleetWithFaults(benchmark::State& state) {
  const bool faulted = state.range(0) != 0;
  const array::Codebook codebook;
  auto& f = Fixture::get();
  for (auto _ : state) {
    std::vector<std::unique_ptr<env::Environment>> envs;
    std::vector<std::unique_ptr<array::PhasedArray>> arrays;
    std::vector<std::unique_ptr<channel::Link>> links;
    std::vector<std::unique_ptr<core::LinkController>> controllers;
    std::vector<sim::FleetLink> members;
    for (int i = 0; i < 3; ++i) {
      envs.push_back(std::make_unique<env::Environment>(env::make_lobby()));
      arrays.push_back(
          std::make_unique<array::PhasedArray>(geom::Vec2{2, 6}, 0.0,
                                               &codebook));
      arrays.push_back(std::make_unique<array::PhasedArray>(
          geom::Vec2{10.0 + i, 6}, 180.0, &codebook));
      links.push_back(std::make_unique<channel::Link>(
          envs.back().get(), arrays[arrays.size() - 2].get(),
          arrays.back().get()));
      controllers.push_back(std::make_unique<core::LibraController>(
          links.back().get(), &f.em, &f.classifier));
      sim::SessionScript script;
      script.duration_ms = 500.0;
      script.rx_trajectory =
          sim::Trajectory::stationary({10.0 + i, 6}, 180.0);
      members.push_back({envs.back().get(), links.back().get(),
                         controllers.back().get(), script});
    }
    sim::FleetConfig cfg;
    cfg.seed = 77;
    if (faulted) cfg.faults = faults::demo_plan(1234);
    benchmark::DoNotOptimize(sim::run_fleet(members, cfg));
  }
}
BENCHMARK(BM_FleetWithFaults)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The sharded fleet engine at deployment scale. Args = {links, threads}
// (threads 0 = hardware concurrency). Each iteration builds a fresh fleet
// of `links` stations -- a 5-beam codebook and a small 4-wall room keep
// the per-link association sweep cheap enough that the tick pipeline, not
// world setup, dominates -- and runs it to completion; every 4th link gets
// a blockage episode so the classifier actually serves batched rows.
// World construction/teardown happens outside the timed region; the
// `links_per_s` rate (link-frames served per second of run_fleet wall
// time) is the number the CI gate tracks. The 100000-link grid point is
// the CI entry; the 1000000-link point exists for local runs and is kept
// out of the CI --benchmark_filter (it needs several GB of RAM, ~2.5 KB
// of mt19937 state per link before worlds).
void BM_FleetMillionLinks(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto& f = Fixture::get();
  static const array::Codebook* small_codebook = [] {
    array::CodebookConfig cb;
    cb.num_beams = 5;
    return new array::Codebook(cb);
  }();
  static const env::Environment room = env::make_conference_room();

  struct World {
    std::vector<env::Environment> envs;
    std::vector<array::PhasedArray> arrays;  // [2i] = AP, [2i+1] = client
    std::vector<channel::Link> links;
    std::vector<core::LibraController> controllers;
    std::vector<sim::FleetLink> members;
  };

  std::int64_t frames = 0;
  std::int64_t rows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    World w;
    w.envs.reserve(n);
    w.arrays.reserve(2 * n);
    w.links.reserve(n);
    w.controllers.reserve(n);
    w.members.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      w.envs.push_back(room);  // own copy: scripts mutate blockers
      w.arrays.emplace_back(geom::Vec2{1.0, 3.4}, 0.0, small_codebook);
      w.arrays.emplace_back(geom::Vec2{6.0 + (i % 4) * 0.8, 2.0 + (i % 3)},
                            180.0, small_codebook);
      w.links.emplace_back(&w.envs[i], &w.arrays[2 * i],
                           &w.arrays[2 * i + 1]);
      w.controllers.emplace_back(&w.links[i], &f.em, &f.classifier);
      sim::FleetLink member{&w.envs[i], &w.links[i], &w.controllers[i], {}};
      member.script.duration_ms = 20.0;
      member.script.rx_trajectory = sim::Trajectory::stationary(
          w.arrays[2 * i + 1].position(), 180.0);
      if (i % 4 == 0) {
        member.script.blockage.push_back({5.0, 18.0, {{4.0, 2.8}, 0.3, 35.0}});
      }
      w.members.push_back(member);
    }
    sim::FleetConfig cfg;
    cfg.seed = 99;
    cfg.num_threads = threads;
    state.ResumeTiming();
    const sim::FleetResult result = sim::run_fleet(w.members, cfg);
    frames += result.link_frames;
    rows += result.batched_rows;
    benchmark::DoNotOptimize(result.ticks);
    state.PauseTiming();
    w = World{};  // teardown of n worlds outside the timed region
    state.ResumeTiming();
  }
  state.SetItemsProcessed(frames);
  state.counters["links"] = static_cast<double>(n);
  state.counters["links_per_s"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kIsRate);
  state.counters["batched_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_FleetMillionLinks)
    ->Args({100000, 0})
    ->Args({1000000, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The same 10^5-link grid point with the online trainer's row stream
// attached and the decide phase served through its generation-tagged swap
// slot (core/trainer.h) -- the costs the serving path pays for online
// learning: the wants() sampling hash per inference decision, the RowRing
// offers for sampled rows, and the per-batch ModelSlot pin. The background
// fit thread is deliberately NOT started: fits happen off-path by
// construction, so what this grid point gates (vs BM_FleetMillionLinks at
// the same {links, threads} in BENCH_baseline.json) is the pure on-path
// overhead, which must stay within a few percent.
void BM_FleetOnlineTrainer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto& f = Fixture::get();
  static const array::Codebook* small_codebook = [] {
    array::CodebookConfig cb;
    cb.num_beams = 5;
    return new array::Codebook(cb);
  }();
  static const env::Environment room = env::make_conference_room();

  struct World {
    std::vector<env::Environment> envs;
    std::vector<array::PhasedArray> arrays;  // [2i] = AP, [2i+1] = client
    std::vector<channel::Link> links;
    std::vector<core::LibraController> controllers;
    std::vector<sim::FleetLink> members;
  };

  std::int64_t frames = 0;
  std::int64_t sampled = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::FleetTrainer trainer;
    trainer.seed_model(f.classifier.forest());
    World w;
    w.envs.reserve(n);
    w.arrays.reserve(2 * n);
    w.links.reserve(n);
    w.controllers.reserve(n);
    w.members.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      w.envs.push_back(room);
      w.arrays.emplace_back(geom::Vec2{1.0, 3.4}, 0.0, small_codebook);
      w.arrays.emplace_back(geom::Vec2{6.0 + (i % 4) * 0.8, 2.0 + (i % 3)},
                            180.0, small_codebook);
      w.links.emplace_back(&w.envs[i], &w.arrays[2 * i],
                           &w.arrays[2 * i + 1]);
      w.controllers.emplace_back(&w.links[i], &f.em, &f.classifier);
      sim::FleetLink member{&w.envs[i], &w.links[i], &w.controllers[i], {}};
      // Twice BM_FleetMillionLinks' 20 ms: a sampled decision resolves at
      // the link's NEXT observe, so links must outlive their first
      // decision for any TrainRow to reach the rings. links_per_s is a
      // per-frame-normalized rate, so the grid points stay comparable.
      member.script.duration_ms = 40.0;
      member.script.rx_trajectory = sim::Trajectory::stationary(
          w.arrays[2 * i + 1].position(), 180.0);
      if (i % 4 == 0) {
        member.script.blockage.push_back({5.0, 38.0, {{4.0, 2.8}, 0.3, 35.0}});
      }
      w.members.push_back(member);
    }
    sim::FleetConfig cfg;
    cfg.seed = 99;
    cfg.num_threads = threads;
    cfg.trainer = &trainer;
    cfg.backend = trainer.backend();
    state.ResumeTiming();
    const sim::FleetResult result = sim::run_fleet(w.members, cfg);
    frames += result.link_frames;
    sampled += result.trainer_rows_sampled;
    benchmark::DoNotOptimize(result.ticks);
    state.PauseTiming();
    w = World{};  // teardown of n worlds outside the timed region
    state.ResumeTiming();
  }
  state.SetItemsProcessed(frames);
  state.counters["links"] = static_cast<double>(n);
  state.counters["links_per_s"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kIsRate);
  state.counters["rows_sampled"] = static_cast<double>(sampled);
}
BENCHMARK(BM_FleetOnlineTrainer)
    ->Args({100000, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The trainer-side row stream in isolation: the wants() sampling hash per
// inference decision, the RowRing offer for each sampled row, and the
// periodic drain + canonical-sort + window/holdout ingest. Arg = sample
// rate in percent (5 = deployment default, 100 = every decision sampled,
// the ingest-dominated worst case). rows_per_s counts decisions, not
// sampled rows -- the number comparable to fleet decision throughput.
void BM_TrainerRowStream(benchmark::State& state) {
  auto& f = Fixture::get();
  core::FleetTrainerConfig cfg;
  cfg.sample_rate = static_cast<double>(state.range(0)) / 100.0;
  cfg.ring_capacity = 8192;
  cfg.window_rows = 8192;
  core::FleetTrainer trainer(cfg);
  trainer.seed_model(f.classifier.forest());
  trainer.attach_producers(1);
  const trace::FeatureVector features =
      trace::extract_features(f.training.records.front());
  constexpr std::size_t kDecisionsPerBatch = 4096;
  std::uint64_t seq = 0;
  std::int64_t ingested = 0;
  for (auto _ : state) {
    for (std::size_t d = 0; d < kDecisionsPerBatch; ++d, ++seq) {
      const std::uint32_t link = static_cast<std::uint32_t>(seq % 64);
      if (!trainer.wants(link, seq / 64)) continue;
      core::TrainRow row;
      row.tick = static_cast<std::int64_t>(seq);
      row.link = link;
      row.features = features;
      row.label = trace::Action::kBA;
      trainer.offer(0, std::move(row));
    }
    ingested += static_cast<std::int64_t>(trainer.ingest_now());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kDecisionsPerBatch));
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(kDecisionsPerBatch),
      benchmark::Counter::kIsRate);
  state.counters["rows_ingested"] = static_cast<double>(ingested);
}
BENCHMARK(BM_TrainerRowStream)
    ->Arg(5)
    ->Arg(100)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// One zero-pause model swap: compile the candidate forest into its flat
// arena and install it into the generation-tagged ModelSlot while reader
// threads keep pinning and serving vote batches -- the publish cost
// handle_model_push and FleetTrainer::train_once pay per shipped
// candidate, and the proof that a swap never blocks a serving batch for
// the arena-build duration. Arg = candidate trees.
void BM_ModelSwapLatency(benchmark::State& state) {
  auto& f = Fixture::get();
  ml::RandomForestConfig cfg;
  cfg.num_trees = static_cast<int>(state.range(0));
  cfg.num_threads = 1;
  ml::RandomForest rf(cfg);
  util::Rng rng(4);
  rf.fit(f.train_ds, rng);

  core::ModelSlot slot;
  slot.install(ml::CompiledForest(rf));
  const ml::DataSet rows = replicate_rows(f.train_ds, 64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&slot, &rows, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto model = slot.pin();
        benchmark::DoNotOptimize(model->forest.vote_fractions_batch(rows));
      }
    });
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(slot.install(ml::CompiledForest(rf)));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  state.counters["generation"] = static_cast<double>(slot.generation());
}
BENCHMARK(BM_ModelSwapLatency)
    ->Arg(20)
    ->Arg(60)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// A classify round trip through the loopback decision daemon: encode the
// batch, cross a unix socket, run the compiled forest server-side, decode
// the verdict reply. Arg = rows per request. The delta against
// BM_CompiledForestBatch at the same row count is the wire + syscall tax
// the controller/minion split pays per decide batch.
void BM_RemoteClassifyLoopback(benchmark::State& state) {
  auto& f = Fixture::get();
  const std::size_t rows_n = static_cast<std::size_t>(state.range(0));
  rpc::ServerConfig scfg;
  scfg.unix_socket = "/tmp/libra_bench_rpc_" + std::to_string(::getpid()) +
                     ".sock";
  scfg.num_workers = 2;
  rpc::DecisionServer server(scfg);
  server.set_forest(f.classifier.forest());
  server.start();
  rpc::ClientConfig ccfg;
  ccfg.unix_socket = scfg.unix_socket;
  ccfg.deadline_ms = 10000.0;
  rpc::DecisionClient client(ccfg);
  const ml::DataSet data = replicate_rows(f.train_ds, rows_n);
  for (auto _ : state) {
    const std::optional<std::vector<std::vector<double>>> votes =
        client.classify(data);
    if (!votes.has_value()) state.SkipWithError("loopback classify failed");
    benchmark::DoNotOptimize(votes);
  }
  server.stop();
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(state.range(0)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RemoteClassifyLoopback)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// Telemetry overhead at a representative instrumentation site: one span,
// one counter bump, one histogram observation per iteration. Arg(0) = the
// runtime null-sink (set_enabled(false) early-out), Arg(1) = recording.
// The delta is the per-site cost run_fleet and classify_batch pay.
void BM_ObsOverhead(benchmark::State& state) {
  const bool record = state.range(0) != 0;
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& counter = reg.counter("bench.obs_overhead.count");
  obs::Histogram& hist = reg.histogram("bench.obs_overhead.value");
  obs::set_enabled(record);
  double v = 0.0;
  for (auto _ : state) {
    OBS_SPAN("bench.obs_overhead");
    counter.inc();
    hist.observe(v);
    v += 1.0;
    benchmark::DoNotOptimize(v);
  }
  obs::set_enabled(true);
  obs::TraceBuffer::global().clear();  // don't pollute later exports
}
BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1);

// One aggregator roll-up: snapshot the (well-populated, by this point in
// the bench binary) process registry, poll one synthetic daemon source,
// and fold both into the ring series. This is the periodic cost the
// background thread pays every rollup_period_ms on `libra serve`.
void BM_AggregatorRollup(benchmark::State& state) {
  obs::AggregatorConfig cfg;
  cfg.rollup_period_ms = 1e9;  // driven manually; the thread never fires
  obs::Aggregator agg(cfg);
  const obs::MetricsSnapshot remote = obs::Registry::global().snapshot();
  agg.add_source([&remote]() -> std::optional<obs::LabeledSnapshot> {
    return obs::LabeledSnapshot{"daemon", remote};
  });
  for (auto _ : state) {
    agg.rollup_now();
  }
  state.counters["series_bytes"] =
      static_cast<double>(agg.prometheus_text().size());
}
BENCHMARK(BM_AggregatorRollup)->Unit(benchmark::kMicrosecond);

// A full /metrics scrape -- HTTP round trip plus Prometheus rendering --
// while `writers` threads hammer a counter and a histogram. Arg = writer
// count (0 = quiescent registry). The scrape path must stay flat under
// write load: recording is wait-free and rendering reads the aggregator's
// rings, not the live shards.
void BM_ScrapeUnderLoad(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  obs::AggregatorConfig acfg;
  acfg.rollup_period_ms = 5.0;
  obs::Aggregator agg(acfg);
  agg.rollup_now();
  agg.start();
  obs::ScrapeServer server(agg);  // ephemeral port
  server.start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> load;
  for (int w = 0; w < writers; ++w) {
    load.emplace_back([&stop, w] {
      obs::Counter& c =
          obs::Registry::global().counter("bench.scrape_load.count");
      obs::Histogram& h =
          obs::Registry::global().histogram("bench.scrape_load.value");
      double v = static_cast<double>(w);
      while (!stop.load(std::memory_order_acquire)) {
        c.inc();
        h.observe(v);
        v += 1.0;
      }
    });
  }

  double bytes = 0.0;
  for (auto _ : state) {
    const std::optional<obs::HttpResponse> resp =
        obs::http_get("127.0.0.1", server.port(), "/metrics");
    if (!resp.has_value() || resp->status != 200) {
      state.SkipWithError("loopback scrape failed");
      break;
    }
    bytes += static_cast<double>(resp->body.size());
    benchmark::DoNotOptimize(resp->body);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : load) t.join();
  server.stop();
  agg.stop();
  if (state.iterations() > 0) {
    state.counters["scrape_bytes"] =
        bytes / static_cast<double>(state.iterations());
  }
}
BENCHMARK(BM_ScrapeUnderLoad)
    ->Arg(0)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void BM_RayTraceLobby(benchmark::State& state) {
  const env::Environment lobby = env::make_lobby();
  const channel::PathTracer tracer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.trace(lobby, {2, 6}, {14, 8}));
  }
}
BENCHMARK(BM_RayTraceLobby);

void BM_ExhaustiveSweep625(benchmark::State& state) {
  auto& f = Fixture::get();
  const env::Environment lobby = env::make_lobby();
  const array::Codebook cb;
  array::PhasedArray tx({2, 6}, 0, &cb);
  array::PhasedArray rx({14, 8}, 180, &cb);
  channel::Link link(&lobby, &tx, &rx);
  const phy::PhySampler sampler(&f.em);
  const mac::BeamTrainer trainer;
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.exhaustive(link, sampler, rng));
  }
}
BENCHMARK(BM_ExhaustiveSweep625)->Unit(benchmark::kMicrosecond);

void BM_Sls80211ad(benchmark::State& state) {
  auto& f = Fixture::get();
  const env::Environment lobby = env::make_lobby();
  const array::Codebook cb;
  array::PhasedArray tx({2, 6}, 0, &cb);
  array::PhasedArray rx({14, 8}, 180, &cb);
  channel::Link link(&lobby, &tx, &rx);
  const phy::PhySampler sampler(&f.em);
  const mac::BeamTrainer trainer;
  util::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.sls_80211ad(link, sampler, rng));
  }
}
BENCHMARK(BM_Sls80211ad)->Unit(benchmark::kMicrosecond);

void BM_Fft256(benchmark::State& state) {
  std::vector<double> pdp(256, 1e-9);
  pdp[10] = 1e-3;
  pdp[40] = 1e-5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::magnitude_spectrum(pdp));
  }
}
BENCHMARK(BM_Fft256);

// The vectorized feature-extraction kernels against their forced-scalar
// references. Arg = force_scalar; every variant labels the dispatched ISA
// and asserts bit-parity against the scalar path (the contract in
// util/simd.h -- these kernels may only dispatch if they cannot change a
// single bit).

// 256-point PDP -> CSI magnitude spectrum, the util/fft.cpp hot path of
// extract_features' "FFT PDP Similarity".
void BM_SimdFft(benchmark::State& state) {
  std::optional<util::simd::ScopedForceScalar> guard;
  if (state.range(0) != 0) guard.emplace();
  state.SetLabel(util::simd::active_isa_name());
  std::vector<double> pdp(256, 1e-9);
  pdp[10] = 1e-3;
  pdp[40] = 1e-5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::magnitude_spectrum(pdp));
  }
  const std::vector<double> dispatched = util::magnitude_spectrum(pdp);
  state.counters["bit_identical"] = [&] {
    util::simd::ScopedForceScalar scalar;
    return dispatched == util::magnitude_spectrum(pdp);
  }();
}
BENCHMARK(BM_SimdFft)->Arg(0)->Arg(1);

// Pearson correlation over two aligned 256-tap PDPs -- the similarity
// kernel extract_features runs per frame for both PDP and CSI similarity.
void BM_PearsonSimilarity(benchmark::State& state) {
  std::optional<util::simd::ScopedForceScalar> guard;
  if (state.range(0) != 0) guard.emplace();
  state.SetLabel(util::simd::active_isa_name());
  std::vector<double> a(256), b(256);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::sin(0.11 * static_cast<double>(i));
    b[i] = std::sin(0.11 * static_cast<double>(i) + 0.2) +
           0.003 * static_cast<double>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::pearson(a, b));
  }
  const double dispatched = util::pearson(a, b);
  state.counters["bit_identical"] = [&] {
    util::simd::ScopedForceScalar scalar;
    return dispatched == util::pearson(a, b);
  }();
}
BENCHMARK(BM_PearsonSimilarity)->Arg(0)->Arg(1);

// Batched CDF queries: 1024 lookups (P(X <= x)) plus 1024 inverse-CDF
// interpolations against a 4096-sample empirical CDF per iteration -- the
// per-metric CDF math of the analysis/eval figures in one shot.
void BM_CdfBatch(benchmark::State& state) {
  std::optional<util::simd::ScopedForceScalar> guard;
  if (state.range(0) != 0) guard.emplace();
  state.SetLabel(util::simd::active_isa_name());
  std::vector<double> samples(4096);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = std::sin(0.37 * static_cast<double>(i)) * 40.0 - 60.0;
  }
  const util::EmpiricalCdf cdf(std::move(samples));
  std::vector<double> xs(1024), qs(1024);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = -100.0 + 0.08 * static_cast<double>(i);
    qs[i] = static_cast<double>(i) / 1023.0;
  }
  std::vector<double> probs(xs.size()), values(qs.size());
  for (auto _ : state) {
    cdf.at_many(xs, probs);
    cdf.quantile_many(qs, values);
    benchmark::DoNotOptimize(probs.data());
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(xs.size() + qs.size()));
  cdf.at_many(xs, probs);
  cdf.quantile_many(qs, values);
  state.counters["bit_identical"] = [&] {
    util::simd::ScopedForceScalar scalar;
    std::vector<double> p2(xs.size()), v2(qs.size());
    cdf.at_many(xs, p2);
    cdf.quantile_many(qs, v2);
    return probs == p2 && values == v2;
  }();
}
BENCHMARK(BM_CdfBatch)->Arg(0)->Arg(1);

void BM_SimulatedEvent(benchmark::State& state) {
  auto& f = Fixture::get();
  const sim::EventSimulator simulator(&f.classifier);
  sim::EventParams p;
  p.rule = f.gt;
  util::Rng rng(7);
  const trace::CaseRecord& rec = f.training.records.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulator.run(rec, core::Strategy::kLibra, p, rng));
  }
}
BENCHMARK(BM_SimulatedEvent)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
