// Figures 1-3 (Sec. 3): COTS 802.11ad heuristics in static, blockage and
// mobility scenarios.
//
// For each scenario we run the COTS device model for 60 s with BA enabled
// and with BA disabled + the best sector locked (found by an exhaustive
// offline search), and report: the number of BA triggers, the number of
// distinct sectors used (the "sector flapping" of Figs. 1a-3b), and the
// average throughput of both variants (Figs. 1c-3c).
//
// Paper shape: static -> disabling BA gains ~26%; blockage -> BA costs ~16%;
// mobility -> BA GAINS ~15% (the one case where adaptation helps).
#include <cstdio>
#include <set>

#include "common.h"
#include "core/cots_device.h"
#include "env/registry.h"
#include "mac/beam_training.h"
#include "util/table.h"

using namespace libra;

namespace {

struct RunStats {
  double avg_tput_mbps = 0.0;
  int ba_triggers = 0;
  int distinct_sectors = 0;
  std::vector<std::pair<double, int>> sector_timeline;  // (t_ms, sector)
};

// Find the best static sector by sequentially trying all of them, as the
// paper did manually with the LEDE firmware.
array::BeamId best_static_sector(channel::Link& link,
                                 const phy::ErrorModel& em) {
  array::BeamId best = 0;
  double best_snr = -1e9;
  for (array::BeamId s = 0; s < link.tx().codebook().size(); ++s) {
    const double snr = link.snr_db(s, array::kQuasiOmni);
    if (snr > best_snr) {
      best_snr = snr;
      best = s;
    }
  }
  (void)em;
  return best;
}

// Best static sector for a whole trajectory: the sector maximizing the
// average achievable throughput over the sampled Rx positions -- this is
// what "manually discovered by sequentially trying all sectors" finds for a
// mobile experiment.
array::BeamId best_trajectory_sector(channel::Link& link,
                                     const phy::ErrorModel& em,
                                     const std::vector<geom::Vec2>& positions) {
  array::BeamId best = 0;
  double best_avg = -1.0;
  const geom::Vec2 start = link.rx().position();
  for (array::BeamId s = 0; s < link.tx().codebook().size(); ++s) {
    double sum = 0.0;
    for (const geom::Vec2& p : positions) {
      link.rx().set_position(p);
      link.refresh();
      const double snr = link.snr_db(s, array::kQuasiOmni);
      const phy::McsIndex m = em.table().highest_supported(snr);
      if (m >= 0) sum += em.expected_throughput_mbps(m, snr);
    }
    if (sum > best_avg) {
      best_avg = sum;
      best = s;
    }
  }
  link.rx().set_position(start);
  link.refresh();
  return best;
}

// One 60 s run. `mover` is called every frame to update the Rx (mobility).
template <typename Mover>
RunStats run(env::Environment& environment, channel::Link& link,
             const phy::ErrorModel& em, bool ba_enabled, Mover&& mover,
             std::uint64_t seed, array::BeamId lock_override = -2) {
  core::CotsDeviceConfig cfg;
  cfg.ba_enabled = ba_enabled;
  // Phone-grade firmware: BA fires after two consecutive missing ACKs or a
  // few frames of poor in-AMPDU delivery.
  cfg.ba_after_ack_losses = 2;
  cfg.ba_cdr_threshold = 0.4;
  core::CotsDevice device(&link, &em, cfg);
  util::Rng rng(seed);
  if (ba_enabled) {
    device.associate(rng);
  } else {
    device.lock_sector(lock_override >= 0 ? lock_override
                                          : best_static_sector(link, em));
  }
  (void)environment;

  RunStats stats;
  std::set<int> sectors;
  double tput_sum = 0.0;
  int frames = 0;
  int last_sector = -999;
  while (device.time_ms() < 60000.0) {
    mover(device.time_ms());
    const core::CotsFrameLog log = device.step(rng);
    tput_sum += log.throughput_mbps;
    ++frames;
    if (log.ba_triggered) ++stats.ba_triggers;
    sectors.insert(log.tx_sector);
    if (log.tx_sector != last_sector) {
      stats.sector_timeline.emplace_back(log.t_ms, log.tx_sector);
      last_sector = log.tx_sector;
    }
  }
  stats.avg_tput_mbps = tput_sum / frames;
  stats.distinct_sectors = static_cast<int>(sectors.size());
  return stats;
}

void report(const char* name, const RunStats& ba_on, const RunStats& ba_off,
            const char* paper_note) {
  bench::heading(name);
  util::Table t({"variant", "avg tput (Mbps)", "BA triggers",
                 "distinct sectors"});
  t.add_row({"BA enabled", util::format_double(ba_on.avg_tput_mbps, 0),
             std::to_string(ba_on.ba_triggers),
             std::to_string(ba_on.distinct_sectors)});
  t.add_row({"BA disabled (best static)",
             util::format_double(ba_off.avg_tput_mbps, 0),
             std::to_string(ba_off.ba_triggers),
             std::to_string(ba_off.distinct_sectors)});
  std::printf("%s", t.to_string().c_str());
  const double gain =
      (ba_off.avg_tput_mbps - ba_on.avg_tput_mbps) / ba_on.avg_tput_mbps;
  std::printf("static-sector gain over BA: %+.1f%%   (paper: %s)\n",
              gain * 100.0, paper_note);
  std::printf("first sector switches (t_ms -> sector): ");
  for (std::size_t i = 0; i < ba_on.sector_timeline.size() && i < 10; ++i) {
    std::printf("%.0f->%d ", ba_on.sector_timeline[i].first,
                ba_on.sector_timeline[i].second);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figures 1-3: COTS link adaptation heuristics (Sec. 3)\n");
  phy::McsTable table;
  const phy::ErrorModel em(&table);
  const array::Codebook codebook;
  // COTS devices (Talon/phone) run at a higher EIRP than the X60 budget
  // used for the dataset; quasi-omni reception eats the Rx array gain.
  channel::LinkBudgetConfig cots_budget;
  cots_budget.tx_power_dbm = 13.0;

  // --- Fig. 1: static client, 9 m down a corridor (30 ft, as the paper). ---
  {
    env::Environment corridor = env::make_corridor(3.2);
    array::PhasedArray tx({0.5, 1.6}, 0.0, &codebook);
    array::PhasedArray rx({9.5, 1.6}, 180.0, &codebook);
    channel::Link link(&corridor, &tx, &rx, cots_budget);
    const auto on = run(corridor, link, em, true, [](double) {}, 11);
    const auto off = run(corridor, link, em, false, [](double) {}, 12);
    report("Fig. 1: static LOS", on, off, "+26% (Fig. 1c)");
  }

  // --- Fig. 2: human blocker on the LOS in the lobby. The client is close
  // enough that a wall reflection still sustains a low MCS. ---
  {
    env::Environment lobby = env::make_lobby();
    array::PhasedArray tx({2.0, 6.0}, 0.0, &codebook);
    array::PhasedArray rx({7.0, 6.0}, 180.0, &codebook);
    channel::Link link(&lobby, &tx, &rx, cots_budget);
    lobby.add_blocker({{4.5, 6.0}, 0.25, 28.0});
    link.refresh();
    const auto on = run(lobby, link, em, true, [](double) {}, 21);
    const auto off = run(lobby, link, em, false, [](double) {}, 22);
    report("Fig. 2: blockage", on, off, "+16% (Fig. 2c)");
  }

  // --- Fig. 3: mobility. The client walks across the lobby at ~8-11 m from
  // the AP while facing it; the AP-to-client angle sweeps ~90 degrees, so
  // the optimal Tx sector genuinely changes during the motion -- the one
  // case where triggering BA pays off. (The paper's radial walk produces
  // the same sector churn on real hardware through imperfect beam patterns
  // and reflections; with our idealized 30-degree lobes a radial walk keeps
  // one sector optimal, so we exercise the same code path with a lateral
  // walk instead. See DESIGN.md.) ---
  {
    env::Environment lobby = env::make_lobby();
    array::PhasedArray tx({12.0, 1.5}, 90.0, &codebook);
    array::PhasedArray rx({4.0, 9.5}, -90.0, &codebook);
    channel::Link link(&lobby, &tx, &rx, cots_budget);
    const double walk_mps = 16.0 / 60.0;  // 16 m across in 60 s
    auto mover = [&](double t_ms) {
      const double x = 4.0 + walk_mps * t_ms / 1000.0;
      if (std::abs(link.rx().position().x - x) > 0.05) {
        link.rx().set_position({x, 9.5});
        link.refresh();
      }
    };
    std::vector<geom::Vec2> trajectory;
    for (double x = 4.0; x <= 20.0; x += 1.0) trajectory.push_back({x, 9.5});
    const array::BeamId lock = best_trajectory_sector(link, em, trajectory);
    const auto on = run(lobby, link, em, true, mover, 31);
    link.rx().set_position({4.0, 9.5});
    link.refresh();
    const auto off = run(lobby, link, em, false, mover, 32, lock);
    report("Fig. 3: mobility (walking across, facing AP)", on, off,
           "-15% (BA helps; Fig. 3c)");
  }
  return 0;
}
