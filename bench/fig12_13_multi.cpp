// Figures 12-13 (Sec. 8.3): multiple link impairments.
//
// 50 random timelines (10 segments of 300 ms - 3 s each) per scenario type
// (Motion, Blockage, Interference, Mixed), for BA overhead {0.5, 250} ms x
// FAT {2, 10} ms. Reports, as boxplots:
//   Fig. 12 - the fraction of Oracle-Data's bytes each algorithm delivers;
//   Fig. 13 - the gap between each algorithm's average link recovery delay
//             and Oracle-Delay's.
//
// Paper shape: LiBRA delivers 90-95% of the oracle bytes in the median
// ("All"), vs 90-92% for BA First and 71-82% for RA First; Mixed is hardest;
// LiBRA keeps the median delay gap below ~35 ms while BA First exceeds
// 170-250 ms when BA is expensive.
#include <cstdio>

#include "common.h"
#include "mac/timing.h"
#include "sim/timeline.h"

using namespace libra;

namespace {

void print_box(util::Table& t, const std::string& label,
               const std::vector<double>& samples, int precision = 2) {
  const util::BoxplotSummary b = util::boxplot(samples);
  t.add_row({label, util::format_double(b.min, precision),
             util::format_double(b.q1, precision),
             util::format_double(b.median, precision),
             util::format_double(b.q3, precision),
             util::format_double(b.max, precision)});
}

}  // namespace

int main() {
  std::printf("Figs. 12-13: multiple link impairments (50 timelines/type)\n");
  auto wb = bench::Workbench::collect(/*with_na=*/true);
  const sim::RecordPools pools = sim::RecordPools::from_dataset(wb.testing);
  constexpr int kTimelines = 50;

  for (double ba : {0.5, 250.0}) {
    for (double fat : mac::kFatsMs) {
      trace::GroundTruthConfig gt;
      gt.alpha = mac::alpha_for_ba_overhead(ba);
      gt.fat_ms = fat;
      gt.ba_overhead_ms = ba;

      util::Rng rng(777);
      core::LibraClassifier classifier;
      classifier.train(wb.training, gt, rng);
      const sim::EventSimulator simulator(&classifier);
      sim::EventParams params;
      params.fat_ms = fat;
      params.ba_overhead_ms = ba;
      params.rule = gt;

      char title[128];
      std::snprintf(title, sizeof(title), "BA overhead %.1f ms, FAT %.0f ms",
                    ba, fat);
      bench::heading(title);
      util::Table t12({"Fig12: scenario/algorithm", "min", "q1", "median",
                       "q3", "max"});
      util::Table t13({"Fig13: scenario/algorithm", "min", "q1", "median",
                       "q3", "max"});

      std::map<core::Strategy, std::vector<double>> all_ratio, all_dgap;
      for (sim::ScenarioType type : sim::kAllScenarioTypes) {
        std::map<core::Strategy, std::vector<double>> ratio, dgap;
        for (int i = 0; i < kTimelines; ++i) {
          util::Rng tl_rng = rng.fork();
          const auto timeline =
              sim::make_timeline(type, pools, {}, tl_rng);
          util::Rng run_rng(1000 + i);
          const auto oracle_d = sim::run_timeline(
              timeline, core::Strategy::kOracleData, simulator, params,
              run_rng);
          const auto oracle_t = sim::run_timeline(
              timeline, core::Strategy::kOracleDelay, simulator, params,
              run_rng);
          for (core::Strategy s :
               {core::Strategy::kBaFirst, core::Strategy::kRaFirst,
                core::Strategy::kLibra}) {
            const auto r = sim::run_timeline(timeline, s, simulator, params,
                                             run_rng);
            const double ratio_v =
                oracle_d.bytes_mb > 0 ? r.bytes_mb / oracle_d.bytes_mb : 1.0;
            const double dgap_v =
                r.avg_recovery_delay_ms - oracle_t.avg_recovery_delay_ms;
            ratio[s].push_back(ratio_v);
            dgap[s].push_back(dgap_v);
            all_ratio[s].push_back(ratio_v);
            all_dgap[s].push_back(dgap_v);
          }
        }
        for (auto& [s, v] : ratio) {
          print_box(t12, to_string(type) + "/" + core::to_string(s), v);
        }
        for (auto& [s, v] : dgap) {
          print_box(t13, to_string(type) + "/" + core::to_string(s), v, 1);
        }
      }
      for (auto& [s, v] : all_ratio) {
        print_box(t12, "All/" + core::to_string(s), v);
      }
      for (auto& [s, v] : all_dgap) {
        print_box(t13, "All/" + core::to_string(s), v, 1);
      }
      std::printf("%s\n%s", t12.to_string().c_str(), t13.to_string().c_str());
    }
  }
  std::printf(
      "\npaper: LiBRA median data ratio 90-95%% (All) vs 90-92%% BA First\n"
      "and 71-82%% RA First; Mixed is the hardest scenario; LiBRA median\n"
      "delay gap <=35 ms while BA First reaches 170-250 ms at 250 ms BA.\n");
  return 0;
}
